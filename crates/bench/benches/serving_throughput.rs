//! Serving-layer load generator: replays a Zipf-skewed query stream
//! against [`ShardedEngine`] and reports QPS and latency percentiles
//! per (phase, technique, shard count).
//!
//! Two phases isolate the two serving-layer effects:
//!
//! * `zipf` — ranks drawn from a Zipf(s = 1.1) distribution over a
//!   fixed key pool, so the same few queries repeat: the result cache
//!   absorbs the repeats and QPS reflects the hit path.
//! * `scan` — every operation is a distinct `(query, ε)` key: all
//!   misses, so QPS reflects the sharded fan-out itself. This is the
//!   phase where shard-count scaling shows — on a multi-core host.
//!   On one core `parallel_map` degrades to a sequential loop and
//!   1-vs-4 shards measures only partitioning overhead (the JSON
//!   records `threads` so a reader can tell which regime produced it).
//! * `scan_indexed` — the scan workload with the candidate index forced
//!   on, so per-technique `IndexStats` (indexed vs scanned queries,
//!   candidates visited — for DUST, the φ-space envelope engaging
//!   through the sharded path) appear in the snapshot.
//! * `overload` — the scan workload hammered from more client threads
//!   than the admission gate has permits, so load shedding engages:
//!   QPS and percentiles cover the *admitted* queries, and the gate's
//!   admitted/rejected counters land in the snapshot next to the cache
//!   and index statistics.
//!
//! Not a criterion bench (criterion reports per-iteration medians; a
//! load generator wants QPS and tail latency), so it is a
//! `harness = false` main like the others, with its own JSON snapshot:
//! set `SERVING_JSON=path` to write `BENCH_serving.json`.

use std::time::Instant;

use rand::Rng;
use uts_bench::bench_task_sized;
use uts_core::index::IndexConfig;
use uts_core::matching::{MatchingTask, Technique};
use uts_core::serving::{
    AdmissionConfig, QueryOptions, ServeError, ShardAssignment, ShardedEngine,
};
use uts_stats::rng::Seed;

const COLLECTION: usize = 48;
const K: usize = 5;
const SIGMA: f64 = 0.5;
const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
/// Distinct `(query, ε, kind)` keys the Zipf phase draws from.
const POOL: usize = 200;
/// Zipf exponent (s > 1 so the head dominates).
const ZIPF_S: f64 = 1.1;

#[derive(Clone, Copy)]
enum OpKind {
    Range,
    TopK,
}

#[derive(Clone, Copy)]
struct Op {
    kind: OpKind,
    query: usize,
    epsilon: f64,
}

struct PhaseResult {
    phase: &'static str,
    technique: &'static str,
    shards: usize,
    ops: usize,
    qps: f64,
    p50_us: f64,
    p99_us: f64,
    cache_hits: u64,
    cache_misses: u64,
    indexed_queries: u64,
    scan_queries: u64,
    index_candidates: u64,
    gate_admitted: u64,
    gate_rejected: u64,
}

/// Inverse-CDF Zipf sampler over ranks `0..n`: rank r has weight
/// `1 / (r + 1)^s`.
struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    fn new(n: usize, s: f64) -> Self {
        let mut cdf: Vec<f64> = Vec::with_capacity(n);
        let mut acc = 0.0;
        for r in 0..n {
            acc += 1.0 / ((r + 1) as f64).powf(s);
            cdf.push(acc);
        }
        let total = acc;
        for c in &mut cdf {
            *c /= total;
        }
        Self { cdf }
    }

    fn sample(&self, rng: &mut rand::rngs::StdRng) -> usize {
        let u: f64 = rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

/// The key pool the Zipf phase draws from: popularity rank r maps to a
/// spread-out query id and one of a few ε scales, 30% top-k.
fn build_pool(task: &MatchingTask, technique: &Technique, rng: &mut rand::rngs::StdRng) -> Vec<Op> {
    let n = task.len();
    (0..POOL)
        .map(|r| {
            let query = (r * 7) % n;
            let scale = [0.5, 0.8, 1.0, 1.5, 2.0][r % 5];
            let epsilon = task.calibrated_threshold(query, technique) * scale;
            let kind = if rng.gen_range(0.0..1.0) < 0.3 {
                OpKind::TopK
            } else {
                OpKind::Range
            };
            Op {
                kind,
                query,
                epsilon,
            }
        })
        .collect()
}

fn run_op(engine: &ShardedEngine, op: Op) -> usize {
    match op.kind {
        OpKind::Range => engine.answer_set(op.query, op.epsilon).len(),
        OpKind::TopK => engine.top_k(op.query, K).expect("distance technique").len(),
    }
}

fn percentile(sorted_ns: &[u64], p: f64) -> f64 {
    if sorted_ns.is_empty() {
        return 0.0;
    }
    let idx = ((sorted_ns.len() - 1) as f64 * p).round() as usize;
    sorted_ns[idx] as f64 / 1_000.0
}

fn run_phase(
    phase: &'static str,
    technique_name: &'static str,
    engine: &ShardedEngine,
    workload: &[Op],
) -> PhaseResult {
    // Warm-up pass over a small prefix so first-touch allocation noise
    // stays out of the percentiles; the cache is reset after it by
    // measuring deltas instead of absolutes.
    for &op in workload.iter().take(8) {
        let _ = run_op(engine, op);
    }
    let before = engine.cache_stats();
    let index_before = engine.index_stats();
    let mut latencies_ns: Vec<u64> = Vec::with_capacity(workload.len());
    let mut guard = 0usize;
    let wall = Instant::now();
    for &op in workload {
        let t0 = Instant::now();
        guard += run_op(engine, op);
        latencies_ns.push(t0.elapsed().as_nanos() as u64);
    }
    let elapsed = wall.elapsed().as_secs_f64();
    std::hint::black_box(guard);
    latencies_ns.sort_unstable();
    let after = engine.cache_stats();
    let index_delta = engine.index_stats().since(&index_before);
    PhaseResult {
        phase,
        technique: technique_name,
        shards: engine.shard_count(),
        ops: workload.len(),
        qps: workload.len() as f64 / elapsed,
        p50_us: percentile(&latencies_ns, 0.50),
        p99_us: percentile(&latencies_ns, 0.99),
        cache_hits: after.hits - before.hits,
        cache_misses: after.misses - before.misses,
        indexed_queries: index_delta.indexed_queries,
        scan_queries: index_delta.scan_queries,
        index_candidates: index_delta.candidates,
        gate_admitted: 0,
        gate_rejected: 0,
    }
}

/// How many client threads hammer the gated engine in the overload
/// phase (more than [`OVERLOAD_PERMITS`], so shedding engages).
const OVERLOAD_CLIENTS: usize = 4;
/// The overload phase's admission capacity.
const OVERLOAD_PERMITS: usize = 2;

/// Replays `workload` from [`OVERLOAD_CLIENTS`] threads against an
/// engine whose admission gate holds only [`OVERLOAD_PERMITS`] permits:
/// rejected operations count into the gate counters, admitted ones into
/// QPS and the latency percentiles.
fn run_overload(
    technique_name: &'static str,
    engine: &ShardedEngine,
    workload: &[Op],
) -> PhaseResult {
    let before = engine.cache_stats();
    let gate_before = engine.gate_stats().expect("overload engine has a gate");
    let chunk = workload.len().div_ceil(OVERLOAD_CLIENTS);
    let opts = QueryOptions::default();
    let wall = Instant::now();
    let per_thread: Vec<Vec<u64>> = std::thread::scope(|scope| {
        let handles: Vec<_> = workload
            .chunks(chunk)
            .map(|slice| {
                scope.spawn(move || {
                    let mut latencies_ns = Vec::with_capacity(slice.len());
                    let mut guard = 0usize;
                    for &op in slice {
                        let t0 = Instant::now();
                        match engine.answer_set_opts(op.query, op.epsilon, &opts) {
                            Ok(resp) => {
                                guard += resp.value.len();
                                latencies_ns.push(t0.elapsed().as_nanos() as u64);
                            }
                            Err(ServeError::Overloaded) => {}
                            Err(e) => panic!("overload phase: unexpected {e}"),
                        }
                    }
                    std::hint::black_box(guard);
                    latencies_ns
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("overload client"))
            .collect()
    });
    let elapsed = wall.elapsed().as_secs_f64();
    let mut latencies_ns: Vec<u64> = per_thread.into_iter().flatten().collect();
    latencies_ns.sort_unstable();
    let after = engine.cache_stats();
    let gate_after = engine.gate_stats().expect("overload engine has a gate");
    PhaseResult {
        phase: "overload",
        technique: technique_name,
        shards: engine.shard_count(),
        ops: workload.len(),
        qps: latencies_ns.len() as f64 / elapsed,
        p50_us: percentile(&latencies_ns, 0.50),
        p99_us: percentile(&latencies_ns, 0.99),
        cache_hits: after.hits - before.hits,
        cache_misses: after.misses - before.misses,
        indexed_queries: 0,
        scan_queries: 0,
        index_candidates: 0,
        gate_admitted: gate_after.admitted - gate_before.admitted,
        gate_rejected: gate_after.rejected - gate_before.rejected,
    }
}

fn main() {
    // Under `cargo bench` the harness passes flags (e.g. `--bench`); a
    // load generator has no filters, so they are accepted and ignored.
    let _ = std::env::args();

    let task = bench_task_sized(COLLECTION, SIGMA, K);
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    let techniques: [(&str, Technique, usize); 2] = [
        ("euclidean", Technique::Euclidean, 2000),
        ("dust", Technique::Dust(Default::default()), 300),
    ];

    let mut results: Vec<PhaseResult> = Vec::new();
    for (name, technique, ops) in &techniques {
        let mut rng = Seed::new(0x5EF).derive(name).rng();
        let pool = build_pool(&task, technique, &mut rng);
        let zipf = Zipf::new(POOL, ZIPF_S);
        let zipf_workload: Vec<Op> = (0..*ops).map(|_| pool[zipf.sample(&mut rng)]).collect();
        // Scan phase: every key distinct (an ε nudged by one part per
        // billion per round is a different bit pattern, hence a
        // guaranteed cache miss), so throughput is pure fan-out.
        let scan_workload: Vec<Op> = (0..*ops)
            .map(|t| {
                let mut op = pool[t % POOL];
                op.epsilon *= 1.0 + 1e-9 * (1 + t / POOL) as f64;
                if matches!(op.kind, OpKind::TopK) {
                    op.kind = OpKind::Range;
                }
                op
            })
            .collect();

        for shards in SHARD_COUNTS {
            let engine =
                ShardedEngine::prepare(&task, technique, shards, ShardAssignment::RoundRobin);
            results.push(run_phase("zipf", name, &engine, &zipf_workload));
            // Fresh engine: the scan phase must not inherit zipf's cache.
            let engine =
                ShardedEngine::prepare(&task, technique, shards, ShardAssignment::RoundRobin);
            results.push(run_phase("scan", name, &engine, &scan_workload));
            // Same miss-heavy workload with the candidate index forced
            // on (the default config never indexes a collection this
            // small), so the per-technique IndexStats — indexed vs
            // scanned queries, candidates visited; for DUST that means
            // the φ-space envelope engaging across shard boundaries —
            // land in the snapshot next to the unindexed rows.
            let engine = ShardedEngine::prepare_with(
                &task,
                technique,
                shards,
                ShardAssignment::RoundRobin,
                IndexConfig::always(),
            );
            results.push(run_phase("scan_indexed", name, &engine, &scan_workload));
            // Overload phase: fresh gated engine, more clients than
            // permits, so the load-shedding counters are exercised.
            let engine =
                ShardedEngine::prepare(&task, technique, shards, ShardAssignment::RoundRobin)
                    .with_admission(AdmissionConfig::reject_when_full(OVERLOAD_PERMITS));
            results.push(run_overload(name, &engine, &scan_workload));
        }
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"serving_throughput\",\n");
    json.push_str(&format!("  \"collection\": {COLLECTION},\n"));
    json.push_str(&format!("  \"series_len\": {},\n", task.clean()[0].len()));
    json.push_str(&format!("  \"threads\": {threads},\n"));
    json.push_str(&format!("  \"zipf_s\": {ZIPF_S},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"phase\": \"{}\", \"technique\": \"{}\", \"shards\": {}, \"ops\": {}, \
             \"qps\": {:.1}, \"p50_us\": {:.2}, \"p99_us\": {:.2}, \
             \"cache_hits\": {}, \"cache_misses\": {}, \
             \"indexed_queries\": {}, \"scan_queries\": {}, \"index_candidates\": {}, \
             \"gate_admitted\": {}, \"gate_rejected\": {}}}{}\n",
            r.phase,
            r.technique,
            r.shards,
            r.ops,
            r.qps,
            r.p50_us,
            r.p99_us,
            r.cache_hits,
            r.cache_misses,
            r.indexed_queries,
            r.scan_queries,
            r.index_candidates,
            r.gate_admitted,
            r.gate_rejected,
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    for r in &results {
        println!(
            "{:4}/{:9} shards={} ops={:5} qps={:>10.1} p50={:>8.2}µs p99={:>8.2}µs hits={} misses={} idx_q={} scan_q={} gate={}/{}",
            r.phase, r.technique, r.shards, r.ops, r.qps, r.p50_us, r.p99_us, r.cache_hits,
            r.cache_misses, r.indexed_queries, r.scan_queries, r.gate_admitted, r.gate_rejected
        );
    }
    if let Ok(path) = std::env::var("SERVING_JSON") {
        std::fs::write(&path, &json).expect("write serving json");
        println!("wrote {path}");
    }
}
