//! Ablation — MUNICH's estimator ladder (DESIGN.md §2.1).
//!
//! Compares the strategies on the paper's Figure 4 geometry (length 6,
//! 5 samples per timestamp): exact DP, histogram convolution at two
//! resolutions, Monte-Carlo at two sample counts, and the effect of the
//! minimal-bounding-interval filter step.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use uts_bench::bench_multi_pair;
use uts_core::munich::{Munich, MunichConfig, MunichStrategy};

fn bench(c: &mut Criterion) {
    // Paper Figure 4 geometry.
    let (x, y) = bench_multi_pair(6, 5, 0.6);
    let eps = 1.5;

    let mut group = c.benchmark_group("munich_strategies");

    let mk = |strategy: MunichStrategy, mbi: bool| {
        Munich::new(MunichConfig {
            strategy,
            use_mbi_filter: mbi,
            ..MunichConfig::default()
        })
    };

    group.bench_function("exact_dp", |b| {
        let m = mk(MunichStrategy::Exact, false);
        b.iter(|| m.probability_within(black_box(&x), black_box(&y), black_box(eps)))
    });
    group.bench_function("convolution_1024", |b| {
        let m = mk(MunichStrategy::Convolution { bins: 1024 }, false);
        b.iter(|| m.probability_within(black_box(&x), black_box(&y), black_box(eps)))
    });
    group.bench_function("convolution_8192", |b| {
        let m = mk(MunichStrategy::Convolution { bins: 8192 }, false);
        b.iter(|| m.probability_within(black_box(&x), black_box(&y), black_box(eps)))
    });
    group.bench_function("monte_carlo_1k", |b| {
        let m = mk(MunichStrategy::MonteCarlo { samples: 1_000 }, false);
        b.iter(|| m.probability_within(black_box(&x), black_box(&y), black_box(eps)))
    });
    group.bench_function("monte_carlo_10k", |b| {
        let m = mk(MunichStrategy::MonteCarlo { samples: 10_000 }, false);
        b.iter(|| m.probability_within(black_box(&x), black_box(&y), black_box(eps)))
    });
    // MBI filter effect: an ε far beyond the upper bound is answered
    // without touching the samples.
    group.bench_function("auto_with_mbi_certain_answer", |b| {
        let m = mk(MunichStrategy::Auto, true);
        b.iter(|| m.probability_within(black_box(&x), black_box(&y), black_box(100.0)))
    });
    group.bench_function("auto_without_mbi_certain_answer", |b| {
        let m = mk(MunichStrategy::Auto, false);
        b.iter(|| m.probability_within(black_box(&x), black_box(&y), black_box(100.0)))
    });

    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
