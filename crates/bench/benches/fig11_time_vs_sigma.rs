//! Figure 11 bench — per-query cost of PROUD, DUST and Euclidean as the
//! error standard deviation varies (normal errors).
//!
//! The paper's claims to verify: σ barely moves any of the three
//! techniques; the ordering is Euclidean < DUST < PROUD.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use uts_bench::bench_uncertain;
use uts_core::dust::Dust;
use uts_core::euclidean::euclidean_uncertain;
use uts_core::proud::{Proud, ProudConfig};
use uts_uncertain::ErrorFamily;

fn bench(c: &mut Criterion) {
    let mut group = c.benchmark_group("fig11_time_vs_sigma");
    for sigma in [0.2, 1.0, 2.0] {
        let coll = bench_uncertain(sigma, ErrorFamily::Normal);
        let query = coll[0].clone();
        let candidates = &coll[1..];

        group.bench_with_input(BenchmarkId::new("euclidean", sigma), &sigma, |b, _| {
            b.iter(|| {
                let mut acc = 0.0;
                for cand in candidates {
                    acc += euclidean_uncertain(black_box(&query), black_box(cand));
                }
                acc
            })
        });

        let dust = Dust::default();
        // Warm the lookup table outside the measurement.
        let _ = dust.distance(&query, &candidates[0]);
        group.bench_with_input(BenchmarkId::new("dust", sigma), &sigma, |b, _| {
            b.iter(|| {
                let mut acc = 0.0;
                for cand in candidates {
                    acc += dust.distance(black_box(&query), black_box(cand));
                }
                acc
            })
        });

        let proud = Proud::new(ProudConfig::with_sigma(sigma));
        group.bench_with_input(BenchmarkId::new("proud", sigma), &sigma, |b, _| {
            b.iter(|| {
                let mut acc = 0.0;
                for cand in candidates {
                    acc += proud.probability_within(
                        black_box(&query),
                        black_box(cand),
                        black_box(5.0),
                    );
                }
                acc
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
