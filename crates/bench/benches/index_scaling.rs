//! Scan-vs-index scaling: the tentpole measurement for the lower-bound
//! candidate index. Runs range and top-k workloads over clustered
//! synthetic collections of 10k / 30k / 100k series (override with
//! `INDEX_SIZES=a,b,c`), with the index forced off and forced on, and
//! reports per-query medians, QPS, and candidates actually visited.
//!
//! The acceptance criterion for the index layer is read straight off
//! this output: at the largest size, `indexed` must beat `scan` for at
//! least Euclidean and UMA with `cand/q` far below the collection size,
//! and for DUST — whose pruning runs PAA gaps through the φ-space cost
//! envelope — by at least 1.5× on the same workload.
//!
//! Not a criterion bench (the quantity of interest is a same-run A/B at
//! three collection sizes, not a per-iteration distribution), so it is
//! a `harness = false` main like `serving_throughput`, with its own
//! JSON snapshot: set `INDEX_JSON=path` to write `BENCH_index.json`.

use std::time::Instant;

use uts_bench::bench_task_clustered;
use uts_core::dust::Dust;
use uts_core::engine::QueryEngine;
use uts_core::index::IndexConfig;
use uts_core::matching::{MatchingTask, Technique};
use uts_core::uma::Uma;

const LEN: usize = 64;
const SIGMA: f64 = 0.4;
const K: usize = 10;
const QUERIES: usize = 16;
const REPS: usize = 3;

#[derive(Clone, Copy)]
enum Op {
    Range,
    TopK,
}

impl Op {
    fn name(self) -> &'static str {
        match self {
            Op::Range => "range",
            Op::TopK => "top_k",
        }
    }
}

struct Row {
    size: usize,
    technique: &'static str,
    op: &'static str,
    scan_p50_us: f64,
    indexed_p50_us: f64,
    scan_qps: f64,
    indexed_qps: f64,
    speedup: f64,
    candidates_per_query: f64,
    build_ms: f64,
    leaves: usize,
}

fn sizes() -> Vec<usize> {
    match std::env::var("INDEX_SIZES") {
        Ok(s) => s
            .split(',')
            .map(|t| {
                t.trim()
                    .parse()
                    .expect("INDEX_SIZES: comma-separated sizes")
            })
            .collect(),
        Err(_) => vec![10_000, 30_000, 100_000],
    }
}

fn median_us(mut lat_ns: Vec<u64>) -> f64 {
    lat_ns.sort_unstable();
    lat_ns[lat_ns.len() / 2] as f64 / 1_000.0
}

/// Runs `REPS` passes of `op` over all queries; returns (p50 µs, qps).
fn run_workload(
    engine: &QueryEngine<&MatchingTask>,
    op: Op,
    queries: &[usize],
    thresholds: &[f64],
) -> (f64, f64) {
    // One warm pass keeps first-touch allocation out of the medians.
    for (&q, &eps) in queries.iter().zip(thresholds).take(2) {
        match op {
            Op::Range => std::hint::black_box(engine.answer_set(q, eps).len()),
            Op::TopK => std::hint::black_box(engine.top_k(q, K).expect("distance").len()),
        };
    }
    let mut lat_ns = Vec::with_capacity(REPS * queries.len());
    let wall = Instant::now();
    let mut guard = 0usize;
    for _ in 0..REPS {
        for (&q, &eps) in queries.iter().zip(thresholds) {
            let t0 = Instant::now();
            guard += match op {
                Op::Range => engine.answer_set(q, eps).len(),
                Op::TopK => engine.top_k(q, K).expect("distance").len(),
            };
            lat_ns.push(t0.elapsed().as_nanos() as u64);
        }
    }
    let elapsed = wall.elapsed().as_secs_f64();
    std::hint::black_box(guard);
    ((median_us(lat_ns)), (REPS * queries.len()) as f64 / elapsed)
}

fn main() {
    // Under `cargo bench` the harness passes flags (e.g. `--bench`);
    // accepted and ignored, as in the other harness = false mains.
    let _ = std::env::args();

    let techniques: [(&'static str, Technique); 3] = [
        ("euclidean", Technique::Euclidean),
        ("uma", Technique::Uma(Uma::default())),
        ("dust", Technique::Dust(Dust::default())),
    ];

    let mut rows: Vec<Row> = Vec::new();
    for size in sizes() {
        let t0 = Instant::now();
        let task = bench_task_clustered(size, LEN, SIGMA, K);
        eprintln!("generated {size}×{LEN} collection in {:?}", t0.elapsed());
        let queries: Vec<usize> = (0..QUERIES).map(|j| j * size / QUERIES).collect();

        for (name, technique) in &techniques {
            let scan = QueryEngine::prepare_with(&task, technique, IndexConfig::disabled());
            let t0 = Instant::now();
            let indexed = QueryEngine::prepare_with(&task, technique, IndexConfig::default());
            let build_ms = t0.elapsed().as_secs_f64() * 1_000.0;
            let leaves = indexed.index().expect("indexed").leaf_count();
            // ε calibrated per query (the paper's protocol: distance to
            // the clean kth neighbour), computed once outside the timers.
            let thresholds: Vec<f64> = queries
                .iter()
                .map(|&q| task.calibrated_threshold(q, technique))
                .collect();

            for op in [Op::Range, Op::TopK] {
                let (scan_p50_us, scan_qps) = run_workload(&scan, op, &queries, &thresholds);
                let before = indexed.index_stats();
                let (indexed_p50_us, indexed_qps) =
                    run_workload(&indexed, op, &queries, &thresholds);
                let delta = indexed.index_stats().since(&before);
                let row = Row {
                    size,
                    technique: name,
                    op: op.name(),
                    scan_p50_us,
                    indexed_p50_us,
                    scan_qps,
                    indexed_qps,
                    speedup: indexed_qps / scan_qps,
                    candidates_per_query: delta.candidates as f64
                        / delta.indexed_queries.max(1) as f64,
                    build_ms,
                    leaves,
                };
                println!(
                    "n={:>6} {:9} {:6} scan={:>9.1}µs idx={:>9.1}µs speedup={:>5.2}x cand/q={:>8.0} of {:>6} (build {:.1}ms, {} leaves)",
                    row.size,
                    row.technique,
                    row.op,
                    row.scan_p50_us,
                    row.indexed_p50_us,
                    row.speedup,
                    row.candidates_per_query,
                    row.size,
                    row.build_ms,
                    row.leaves
                );
                rows.push(row);
            }
        }
    }

    let mut json = String::from("{\n");
    json.push_str("  \"bench\": \"index_scaling\",\n");
    json.push_str(&format!("  \"series_len\": {LEN},\n"));
    json.push_str(&format!("  \"sigma\": {SIGMA},\n"));
    json.push_str(&format!("  \"k\": {K},\n"));
    json.push_str(&format!("  \"queries\": {QUERIES},\n"));
    json.push_str(&format!("  \"reps\": {REPS},\n"));
    json.push_str("  \"results\": [\n");
    for (i, r) in rows.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"size\": {}, \"technique\": \"{}\", \"op\": \"{}\", \
             \"scan_p50_us\": {:.2}, \"indexed_p50_us\": {:.2}, \
             \"scan_qps\": {:.1}, \"indexed_qps\": {:.1}, \"speedup\": {:.2}, \
             \"candidates_per_query\": {:.1}, \"index_build_ms\": {:.2}, \"leaves\": {}}}{}\n",
            r.size,
            r.technique,
            r.op,
            r.scan_p50_us,
            r.indexed_p50_us,
            r.scan_qps,
            r.indexed_qps,
            r.speedup,
            r.candidates_per_query,
            r.build_ms,
            r.leaves,
            if i + 1 == rows.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");

    if let Ok(path) = std::env::var("INDEX_JSON") {
        std::fs::write(&path, &json).expect("write index json");
        println!("wrote {path}");
    }
}
