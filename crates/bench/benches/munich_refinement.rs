//! MUNICH pruned refinement: the count-bound early-abandonment pipeline
//! against the full-probability scan it replaced (ISSUE 6 acceptance:
//! ≥ 50× median on `query_throughput/range/munich`).
//!
//! The `query_throughput/range/munich/{naive,engine}` entries replicate
//! the workload of the `query_throughput` bench bit-for-bit (same task,
//! same queries, same calibrated thresholds), so a BENCH_munich.json
//! captured here compares directly against the BENCH_engine.json
//! baseline. The extra `munich_refinement/*` entries isolate where the
//! win comes from: the per-pair decision pipeline vs the full
//! probability, per strategy.

use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;
use uts_bench::{bench_multi_pair, bench_task};
use uts_core::engine::QueryEngine;
use uts_core::matching::Technique;
use uts_core::munich::{Munich, MunichConfig, MunichStrategy};

const QUERIES: [usize; 8] = [0, 4, 8, 12, 16, 20, 24, 28];
const SIGMA: f64 = 0.5;
const K: usize = 3;

fn bench(c: &mut Criterion) {
    let task = bench_task(SIGMA, K);
    let technique = Technique::Munich {
        munich: Default::default(),
        tau: 0.4,
    };
    let eps: Vec<(usize, f64)> = QUERIES
        .iter()
        .map(|&q| (q, task.calibrated_threshold(q, &technique)))
        .collect();

    let mut group = c.benchmark_group("query_throughput");
    group.bench_function("range/munich/naive", |b| {
        b.iter(|| {
            let mut guard = 0usize;
            for &(q, e) in &eps {
                guard += task
                    .answer_set_naive(black_box(q), &technique, black_box(e))
                    .len();
            }
            guard
        })
    });
    let engine = QueryEngine::prepare(&task, &technique);
    group.bench_function("range/munich/engine", |b| {
        b.iter(|| {
            let mut guard = 0usize;
            for &(q, e) in &eps {
                guard += engine.answer_set(black_box(q), black_box(e)).len();
            }
            guard
        })
    });
    group.finish();

    // Per-pair ablation: full probability vs pruned decision, per
    // strategy, on one undecided-by-MBI pair (the cost centre the range
    // scan above multiplies by |collection|).
    let (x, y) = bench_multi_pair(150, 3, SIGMA);
    let mut group = c.benchmark_group("munich_refinement");
    for (name, strategy) in [
        ("auto", MunichStrategy::Auto),
        ("convolution", MunichStrategy::Convolution { bins: 8192 }),
        ("montecarlo", MunichStrategy::MonteCarlo { samples: 10_000 }),
    ] {
        let munich = Munich::new(MunichConfig {
            strategy,
            ..MunichConfig::default()
        });
        // ε chosen mid-distribution so neither the MBI filter nor a
        // trivial bound decides instantly; τ at the throughput bench's
        // setting.
        let eps = {
            let mut lo = 0.0f64;
            let mut hi = 64.0f64;
            for _ in 0..24 {
                let mid = 0.5 * (lo + hi);
                if munich.probability_within(&x, &y, mid) < 0.5 {
                    lo = mid;
                } else {
                    hi = mid;
                }
            }
            0.5 * (lo + hi)
        };
        group.bench_function(format!("probability/{name}"), |b| {
            b.iter(|| black_box(munich.probability_within(black_box(&x), black_box(&y), eps)))
        });
        group.bench_function(format!("decide/{name}"), |b| {
            b.iter(|| black_box(munich.decide_within(black_box(&x), black_box(&y), eps, 0.4)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
