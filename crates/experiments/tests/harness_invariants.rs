//! Invariants of the experiment harness that the figure results rest on.

use proptest::prelude::*;
use uts_core::matching::Technique;
use uts_core::proud::{Proud, ProudConfig};
use uts_datasets::{Catalogue, DatasetId};
use uts_experiments::runner::{
    build_task, parallel_map, pick_queries, technique_scores, technique_scores_optimal_tau,
    ReportedError,
};
use uts_stats::rng::Seed;
use uts_uncertain::{ErrorFamily, ErrorSpec};

/// The optimal-τ fast path (one probability pass + thresholding) must
/// agree exactly with re-running the full answer-set protocol at the
/// chosen τ — this is what makes the harness's τ search sound.
#[test]
fn tau_fast_path_equals_answer_set_protocol() {
    let seed = Seed::new(41);
    let dataset = Catalogue::new(seed).generate_scaled(DatasetId::Coffee, 24);
    let spec = ErrorSpec::constant(ErrorFamily::Normal, 0.6);
    let task = build_task(&dataset, &spec, ReportedError::Truthful, None, 5, seed);
    let queries = pick_queries(task.len(), 8, seed);
    let proud = Technique::Proud {
        proud: Proud::new(ProudConfig::with_sigma(0.6)),
        tau: 0.5,
    };
    let grid = [1e-12, 1e-6, 0.01, 0.2, 0.5, 0.8];
    let (best_tau, fast) = technique_scores_optimal_tau(&task, &queries, &proud, &grid);
    // Re-run the slow path at the chosen τ.
    let slow = technique_scores(&task, &queries, &proud.with_tau(best_tau));
    assert!(
        (fast.f1.mean() - slow.f1.mean()).abs() < 1e-12,
        "fast {} vs slow {}",
        fast.f1.mean(),
        slow.f1.mean()
    );
    assert!((fast.precision.mean() - slow.precision.mean()).abs() < 1e-12);
    assert!((fast.recall.mean() - slow.recall.mean()).abs() < 1e-12);
}

/// Whole-harness determinism: two independent runs of a figure-style
/// evaluation from the same seed give identical aggregates.
#[test]
fn harness_is_deterministic() {
    let run = || {
        let seed = Seed::new(42);
        let dataset = Catalogue::new(seed).generate_scaled(DatasetId::Trace, 20);
        let spec = ErrorSpec::paper_mixed(ErrorFamily::Exponential);
        let task = build_task(&dataset, &spec, ReportedError::Truthful, None, 5, seed);
        let queries = pick_queries(task.len(), 6, seed);
        technique_scores(&task, &queries, &Technique::Euclidean)
            .f1
            .mean()
    };
    assert_eq!(run().to_bits(), run().to_bits());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// parallel_map over any payload preserves order and multiplicity.
    #[test]
    fn parallel_map_is_order_preserving(items in prop::collection::vec(any::<i64>(), 0..300)) {
        let doubled = parallel_map(&items, |&x| x.wrapping_mul(2));
        prop_assert_eq!(doubled.len(), items.len());
        for (i, v) in doubled.iter().enumerate() {
            prop_assert_eq!(*v, items[i].wrapping_mul(2));
        }
    }

    /// pick_queries yields sorted, unique, in-range indices of the right
    /// count, deterministically.
    #[test]
    fn pick_queries_contract(n in 1usize..500, count in 0usize..600, seed in any::<u64>()) {
        let q = pick_queries(n, count, Seed::new(seed));
        prop_assert_eq!(q.len(), count.min(n));
        prop_assert!(q.windows(2).all(|w| w[1] > w[0]));
        prop_assert!(q.iter().all(|&i| i < n));
        prop_assert_eq!(&q, &pick_queries(n, count, Seed::new(seed)));
    }
}
