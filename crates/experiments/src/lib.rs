//! Experiment harness regenerating every figure of Dallachiesa et al.
//! (VLDB 2012).
//!
//! One module per experiment (grouped where the paper groups them), plus
//! shared machinery:
//!
//! * [`config`] — run configuration and the three scale presets
//!   (`quick` / `paper-shape` / `full`).
//! * [`table`] — result tables: aligned console output + CSV files.
//! * [`runner`] — the workload builder (dataset → perturbed task) and the
//!   parallel query-evaluation loop (`std::thread::scope`).
//! * [`figures`] — the per-figure experiment drivers; see DESIGN.md §4
//!   for the figure-by-figure index.
//!
//! The `repro` binary exposes each experiment as a subcommand
//! (`repro fig4 … repro fig17`, `repro chisq`, `repro all`).

#![warn(missing_docs)]
#![warn(clippy::all)]

#[cfg(feature = "serde")]
compile_error!(
    "the `serde` feature is a placeholder: the hermetic build has no vendored serde yet. \
     Vendor a serde stand-in under vendor/ (and switch this gate off) before enabling it."
);

pub mod config;
pub mod figures;
pub mod runner;
pub mod table;

pub use config::{ExpConfig, Scale};
pub use table::Table;
