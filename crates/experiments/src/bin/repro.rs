//! `repro` — regenerate the figures of Dallachiesa et al. (VLDB 2012).
//!
//! ```text
//! repro <experiment> [--scale quick|paper-shape|full] [--seed N] [--out DIR]
//!
//! experiments:
//!   chisq   fig4   fig5   fig6   fig7   fig8   fig9   fig10
//!   fig11   fig12  fig13  fig14  fig15  fig16  fig17
//!   all     — run everything (in paper order)
//! ```
//!
//! Each experiment prints its result table(s) to stdout and writes a CSV
//! per table into the output directory (default `./results`).

use std::process::ExitCode;

use uts_experiments::config::{ExpConfig, Scale};
use uts_experiments::figures;
use uts_experiments::table::Table;
use uts_stats::rng::Seed;
use uts_uncertain::ErrorFamily;

const USAGE: &str = "\
usage: repro <experiment> [--scale quick|paper-shape|full] [--seed N] [--out DIR]

experiments:
  chisq        Section 4.1.1 chi-square uniformity test
  fig4         F1: MUNICH/PROUD/DUST/Euclidean, truncated GunPoint
  fig5         F1: PROUD/DUST/Euclidean over all datasets, sigma sweep
  fig6         precision/recall: PROUD
  fig7         precision/recall: DUST
  fig8         F1 per dataset: mixed normal error
  fig9         F1 per dataset: mixed error families
  fig10        F1 per dataset: sigma misreported as 0.7
  fig11        time per query vs sigma
  fig12        time per query vs series length
  fig13        F1 vs window size (UMA/UEMA)
  fig14        F1 vs decay factor (UEMA)
  fig15        F1 per dataset: Euclid/DUST/UMA/UEMA, mixed uniform
  fig16        F1 per dataset: Euclid/DUST/UMA/UEMA, mixed normal
  fig17        F1 per dataset: Euclid/DUST/UMA/UEMA, mixed exponential
  all          everything above, in order

extensions (not in the paper's evaluation; see DESIGN.md):
  ext-dtw      aligned vs DTW measures on a warped workload
  ext-moments  PROUD normal-theory vs exact-moment variance
  ext-synopsis PROUD Haar-synopsis pruning (rate / agreement / time)
  ext-bridge   sample-estimated pdf model vs known sigma
  ext-classify leave-one-out 1-NN accuracy per distance measure
  stats        per-dataset geometry diagnostics (paper section 6)
  ext          all six extensions
";

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match run(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            eprintln!("{USAGE}");
            ExitCode::FAILURE
        }
    }
}

fn run(args: &[String]) -> Result<(), String> {
    let mut experiment: Option<String> = None;
    let mut config = ExpConfig::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--scale" => {
                let v = it.next().ok_or("--scale needs a value")?;
                config.scale = Scale::parse(v).ok_or_else(|| format!("unknown scale '{v}'"))?;
            }
            "--seed" => {
                let v = it.next().ok_or("--seed needs a value")?;
                let n: u64 = v.parse().map_err(|_| format!("invalid seed '{v}'"))?;
                config.seed = Seed::new(n);
            }
            "--out" => {
                let v = it.next().ok_or("--out needs a value")?;
                config.out_dir = v.into();
            }
            "--help" | "-h" => {
                println!("{USAGE}");
                return Ok(());
            }
            other if experiment.is_none() && !other.starts_with('-') => {
                experiment = Some(other.to_string());
            }
            other => return Err(format!("unexpected argument '{other}'")),
        }
    }
    let experiment = experiment.ok_or("no experiment given")?;

    let names: Vec<&str> = match experiment.as_str() {
        "all" => vec![
            "chisq", "fig4", "fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12",
            "fig13", "fig14", "fig15", "fig16", "fig17",
        ],
        "ext" => vec![
            "ext-dtw",
            "ext-moments",
            "ext-synopsis",
            "ext-bridge",
            "ext-classify",
            "stats",
        ],
        other => vec![other],
    };

    println!(
        "# uncertts repro — scale: {}, seed: {}, out: {}",
        config.scale.name(),
        config.seed.value(),
        config.out_dir.display()
    );
    for name in names {
        let start = std::time::Instant::now();
        let tables = dispatch(name, &config)?;
        let elapsed = start.elapsed().as_secs_f64();
        for (i, table) in tables.iter().enumerate() {
            println!("\n{table}");
            let file = if tables.len() == 1 {
                name.to_string()
            } else {
                format!("{name}_{}", (b'a' + i as u8) as char)
            };
            let path = table
                .save_csv(&config.out_dir, &file)
                .map_err(|e| format!("writing {file}.csv: {e}"))?;
            println!("[saved {}]", path.display());
        }
        println!("[{name} completed in {elapsed:.1}s]");
    }
    Ok(())
}

fn dispatch(name: &str, config: &ExpConfig) -> Result<Vec<Table>, String> {
    use figures::fig06_07::Which as PR;
    use figures::fig08_10::Which as Mixed;
    Ok(match name {
        "chisq" => figures::chisq::run(config),
        "fig4" => figures::fig04::run(config),
        "fig5" => figures::fig05::run(config),
        "fig6" => figures::fig06_07::run(config, PR::Proud),
        "fig7" => figures::fig06_07::run(config, PR::Dust),
        "fig8" => figures::fig08_10::run(config, Mixed::MixedNormal),
        "fig9" => figures::fig08_10::run(config, Mixed::MixedFamilies),
        "fig10" => figures::fig08_10::run(config, Mixed::MisreportedSigma),
        "fig11" => figures::fig11::run(config),
        "fig12" => figures::fig12::run(config),
        "fig13" => figures::fig13_14::run_fig13(config),
        "fig14" => figures::fig13_14::run_fig14(config),
        "fig15" => figures::fig15_17::run(config, ErrorFamily::Uniform),
        "fig16" => figures::fig15_17::run(config, ErrorFamily::Normal),
        "fig17" => figures::fig15_17::run(config, ErrorFamily::Exponential),
        "ext-dtw" => figures::extensions::run_dtw(config),
        "ext-moments" => figures::extensions::run_moments(config),
        "ext-synopsis" => figures::extensions::run_synopsis(config),
        "ext-bridge" => figures::extensions::run_bridge(config),
        "ext-classify" => figures::extensions::run_classify(config),
        "stats" => figures::dataset_stats::run(config),
        other => return Err(format!("unknown experiment '{other}'")),
    })
}
