//! Result tables: aligned console rendering and CSV output.
//!
//! Every experiment produces one or more [`Table`]s — the textual
//! equivalent of the paper's figures: one row per x-axis point (σ value,
//! window size, dataset, …), one column per plotted series (technique,
//! error family, …), cells carrying `mean ± 95% CI` where applicable.

use std::fmt::Write as _;
use std::io::Write as _;
use std::path::Path;

/// A rectangular result table.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Table {
    /// Table title (figure reference + description).
    pub title: String,
    /// Column headers; `headers[0]` names the x-axis.
    pub headers: Vec<String>,
    /// Rows of rendered cells; each row has `headers.len()` cells.
    pub rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates an empty table.
    pub fn new(title: impl Into<String>, headers: Vec<String>) -> Self {
        assert!(!headers.is_empty(), "table needs at least one column");
        Self {
            title: title.into(),
            headers,
            rows: Vec::new(),
        }
    }

    /// Appends a row.
    ///
    /// # Panics
    /// If the cell count does not match the header count.
    pub fn push_row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row width {} != header width {}",
            cells.len(),
            self.headers.len()
        );
        self.rows.push(cells);
    }

    /// Formats a mean ± half-width cell.
    pub fn cell_ci(mean: f64, half_width: f64) -> String {
        if half_width.is_nan() {
            format!("{mean:.3}")
        } else {
            format!("{mean:.3}±{half_width:.3}")
        }
    }

    /// Formats a plain numeric cell.
    pub fn cell(value: f64) -> String {
        format!("{value:.4}")
    }

    /// Renders the table with aligned columns.
    ///
    /// Widths are measured in characters, not bytes — the `±` in CI cells
    /// is multi-byte.
    pub fn render(&self) -> String {
        let char_len = |s: &str| s.chars().count();
        let mut widths: Vec<usize> = self.headers.iter().map(|h| char_len(h)).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(char_len(cell));
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let line = |out: &mut String, cells: &[String]| {
            let mut first = true;
            for (w, cell) in widths.iter().zip(cells) {
                if !first {
                    out.push_str("  ");
                }
                for _ in char_len(cell)..*w {
                    out.push(' ');
                }
                out.push_str(cell);
                first = false;
            }
            out.push('\n');
        };
        line(&mut out, &self.headers);
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len() - 1);
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            line(&mut out, row);
        }
        out
    }

    /// Serialises the table as CSV (headers + rows; commas inside cells
    /// are replaced by semicolons — cells here are simple numbers/names).
    pub fn to_csv(&self) -> String {
        let esc = |s: &str| s.replace(',', ";");
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.headers
                .iter()
                .map(|h| esc(h))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| esc(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Writes the CSV into `dir/name.csv`, creating `dir` if needed.
    pub fn save_csv(&self, dir: &Path, name: &str) -> std::io::Result<std::path::PathBuf> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(format!("{name}.csv"));
        let mut f = std::fs::File::create(&path)?;
        f.write_all(self.to_csv().as_bytes())?;
        Ok(path)
    }
}

impl std::fmt::Display for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.render())
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    fn sample() -> Table {
        let mut t = Table::new(
            "Fig X: demo",
            vec!["sigma".into(), "DUST".into(), "Euclidean".into()],
        );
        t.push_row(vec![
            "0.2".into(),
            Table::cell(0.91234),
            Table::cell_ci(0.9, 0.02),
        ]);
        t.push_row(vec![
            "2.0".into(),
            Table::cell(0.5),
            Table::cell_ci(0.45, f64::NAN),
        ]);
        t
    }

    #[test]
    fn render_is_aligned() {
        let r = sample().render();
        assert!(r.contains("## Fig X: demo"));
        let lines: Vec<&str> = r.lines().collect();
        // header + separator + 2 rows + title
        assert_eq!(lines.len(), 5);
        // All data lines share the same display width (in chars).
        assert_eq!(lines[1].chars().count(), lines[3].chars().count());
    }

    #[test]
    fn csv_round_trip_structure() {
        let csv = sample().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert_eq!(lines[0], "sigma,DUST,Euclidean");
        assert!(lines[1].starts_with("0.2,0.9123,"));
    }

    #[test]
    fn save_csv_writes_file() {
        let dir = std::env::temp_dir().join("uncertts-table-test");
        let path = sample().save_csv(&dir, "demo").unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("sigma,DUST"));
        let _ = std::fs::remove_file(path);
    }

    #[test]
    fn ci_cell_formats() {
        assert_eq!(Table::cell_ci(0.5, 0.011), "0.500±0.011");
        assert_eq!(Table::cell_ci(0.5, f64::NAN), "0.500");
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn ragged_row_panics() {
        let mut t = Table::new("t", vec!["a".into(), "b".into()]);
        t.push_row(vec!["1".into()]);
    }
}
