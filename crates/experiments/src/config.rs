//! Run configuration and scale presets.

use uts_stats::rng::Seed;

/// How much of the paper-scale workload to run.
///
/// The paper evaluates 17 datasets with on average 502 series of length
/// 290, using *every* series as a query — far more compute than a figure
/// regeneration needs. The presets trade completeness for wall-clock:
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Scale {
    /// Smoke-test scale: few series, few queries, coarse σ grid.
    /// Whole-suite runtime: seconds-to-minutes.
    Quick,
    /// Default: enough series/queries per dataset for stable technique
    /// ordering, full σ grid — reproduces the *shape* of every figure.
    PaperShape,
    /// Full catalogue scale: every series, every query, as in the paper.
    /// Hours of compute; use for final verification.
    Full,
}

impl Scale {
    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "quick" => Some(Scale::Quick),
            "paper-shape" | "paper" | "default" => Some(Scale::PaperShape),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// CLI spelling.
    pub fn name(self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::PaperShape => "paper-shape",
            Scale::Full => "full",
        }
    }

    /// Maximum series kept per dataset (stratified subsample).
    pub fn max_series(self) -> usize {
        match self {
            Scale::Quick => 24,
            Scale::PaperShape => 60,
            Scale::Full => usize::MAX,
        }
    }

    /// Number of queries evaluated per dataset (`usize::MAX` = every
    /// series, the paper's setup).
    pub fn queries_per_dataset(self) -> usize {
        match self {
            Scale::Quick => 8,
            Scale::PaperShape => 20,
            Scale::Full => usize::MAX,
        }
    }

    /// The error-σ sweep grid (paper: 0.2 … 2.0).
    pub fn sigma_grid(self) -> Vec<f64> {
        match self {
            Scale::Quick => vec![0.2, 0.6, 1.0, 1.4, 1.8],
            _ => (1..=10).map(|i| i as f64 * 0.2).collect(),
        }
    }

    /// τ grid for the optimal-threshold search of MUNICH/PROUD (see
    /// `uts_core::matching::default_tau_grid` for why it reaches far
    /// below the linear range).
    pub fn tau_grid(self) -> Vec<f64> {
        match self {
            Scale::Quick => vec![1e-30, 1e-15, 1e-7, 1e-3, 0.1, 0.3, 0.5, 0.7, 0.9],
            _ => uts_core::matching::default_tau_grid(),
        }
    }
}

/// Configuration shared by all experiments.
#[derive(Debug, Clone)]
pub struct ExpConfig {
    /// Root seed: the entire experiment suite is deterministic in it.
    pub seed: Seed,
    /// Workload scale preset.
    pub scale: Scale,
    /// Directory for CSV outputs (created on demand).
    pub out_dir: std::path::PathBuf,
    /// Ground-truth neighbourhood size (paper: 10).
    pub ground_truth_k: usize,
    /// MUNICH repeated observations per timestamp (paper Figure 4: 5).
    pub munich_samples: usize,
}

impl Default for ExpConfig {
    fn default() -> Self {
        Self {
            seed: Seed::new(20120827), // the paper's conference start date
            scale: Scale::PaperShape,
            out_dir: std::path::PathBuf::from("results"),
            ground_truth_k: 10,
            munich_samples: 5,
        }
    }
}

impl ExpConfig {
    /// Config with a given scale, defaults elsewhere.
    pub fn with_scale(scale: Scale) -> Self {
        Self {
            scale,
            ..Self::default()
        }
    }
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn scale_parsing_round_trip() {
        for s in [Scale::Quick, Scale::PaperShape, Scale::Full] {
            assert_eq!(Scale::parse(s.name()), Some(s));
        }
        assert_eq!(Scale::parse("paper"), Some(Scale::PaperShape));
        assert_eq!(Scale::parse("bogus"), None);
    }

    #[test]
    fn sigma_grid_spans_paper_range() {
        for s in [Scale::Quick, Scale::PaperShape, Scale::Full] {
            let grid = s.sigma_grid();
            assert!((grid[0] - 0.2).abs() < 1e-12);
            assert!((grid.last().unwrap() - 1.8).abs() < 0.21, "{grid:?}");
            assert!(grid.windows(2).all(|w| w[1] > w[0]));
        }
        assert_eq!(Scale::PaperShape.sigma_grid().len(), 10);
    }

    #[test]
    fn default_config_matches_paper_constants() {
        let c = ExpConfig::default();
        assert_eq!(c.ground_truth_k, 10);
        assert_eq!(c.munich_samples, 5);
        assert_eq!(c.scale, Scale::PaperShape);
    }
}
