//! Workload construction and parallel evaluation.
//!
//! Translates a clean [`Dataset`] plus an [`ErrorSpec`] into the paper's
//! §4.1.2 matching task, picks the query set, and evaluates techniques
//! over all queries in parallel (`std::thread::scope` — queries are
//! embarrassingly parallel).

use std::time::Instant;

use uts_core::engine::QueryEngine;
use uts_core::matching::{MatchingTask, QualityScores, Technique};
use uts_datasets::Dataset;
use uts_stats::rng::Seed;
use uts_stats::Moments;
use uts_uncertain::{perturb, perturb_multi, ErrorSpec, MultiObsSeries, UncertainSeries};

/// What the techniques are *told* about the per-point error — the paper's
/// misreporting experiments (Figures 8–10) deliberately diverge from the
/// truth.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ReportedError {
    /// Techniques receive the true perturbation parameters.
    Truthful,
    /// Every point is reported as having this σ (family preserved).
    ConstantSigma(f64),
}

/// Builds the matching task for one dataset and one perturbation spec.
///
/// Each series gets an independent perturbation stream derived from
/// `seed` and its index; `munich_samples` additionally materialises the
/// repeated-observation views MUNICH needs (skip it for the experiments
/// that exclude MUNICH — it multiplies the perturbation work by `s`).
pub fn build_task(
    dataset: &Dataset,
    spec: &ErrorSpec,
    reported: ReportedError,
    munich_samples: Option<usize>,
    k: usize,
    seed: Seed,
) -> MatchingTask {
    let uncertain: Vec<UncertainSeries> = dataset
        .series
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let p = perturb(c, spec, seed.derive("pdf").derive_u64(i as u64));
            match reported {
                ReportedError::Truthful => p,
                ReportedError::ConstantSigma(s) => p.with_reported_sigma(s),
            }
        })
        .collect();
    let multi: Option<Vec<MultiObsSeries>> = munich_samples.map(|s| {
        dataset
            .series
            .iter()
            .enumerate()
            .map(|(i, c)| perturb_multi(c, spec, s, seed.derive("multi").derive_u64(i as u64)))
            .collect()
    });
    MatchingTask::new(dataset.series.clone(), uncertain, multi, k)
}

/// Deterministic query subset: `count` distinct indices out of `n`
/// (all of them when `count >= n`), shuffled by `seed`.
pub fn pick_queries(n: usize, count: usize, seed: Seed) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..n).collect();
    if count >= n {
        return idx;
    }
    use rand::seq::SliceRandom;
    let mut rng = seed.derive("queries").rng();
    idx.shuffle(&mut rng);
    idx.truncate(count);
    idx.sort_unstable();
    idx
}

// Now lives in uts-core (the engine's MUNICH refinement fans candidates
// over it too); re-exported here so existing callers keep their path.
pub use uts_core::parallel::parallel_map;

/// Aggregated quality over a query set: one [`Moments`] accumulator per
/// metric, ready for means and 95% confidence intervals.
#[derive(Debug, Clone, Default)]
pub struct ScoreAgg {
    /// F1 accumulator.
    pub f1: Moments,
    /// Precision accumulator.
    pub precision: Moments,
    /// Recall accumulator.
    pub recall: Moments,
}

impl ScoreAgg {
    /// Adds one query's scores.
    pub fn push(&mut self, s: QualityScores) {
        self.f1.push(s.f1);
        self.precision.push(s.precision);
        self.recall.push(s.recall);
    }

    /// Merges another aggregate (for cross-dataset averaging).
    pub fn merge(&mut self, other: &ScoreAgg) {
        self.f1.merge(&other.f1);
        self.precision.merge(&other.precision);
        self.recall.merge(&other.recall);
    }

    /// Builds from a batch of per-query scores.
    pub fn from_scores(scores: &[QualityScores]) -> Self {
        let mut agg = Self::default();
        for &s in scores {
            agg.push(s);
        }
        agg
    }
}

/// Evaluates a technique over the query set in parallel (full §4.1.2
/// protocol per query: calibrate threshold → answer → score).
///
/// One [`QueryEngine`] is prepared up front and shared by all workers, so
/// the per-collection state (UMA/UEMA filtered series, DUST tables,
/// MUNICH envelopes) is computed once instead of once per query.
pub fn technique_scores(task: &MatchingTask, queries: &[usize], technique: &Technique) -> ScoreAgg {
    let engine = QueryEngine::prepare(task, technique);
    let scores = parallel_map(queries, |&q| engine.query_quality(q));
    ScoreAgg::from_scores(&scores)
}

/// Evaluates a probabilistic technique at its *optimal* τ (paper: "we are
/// using the optimal probabilistic threshold, determined after repeated
/// experiments"): grid-search τ on the same query set, then score.
///
/// Returns `(best_tau, aggregate)`. Non-probabilistic techniques skip the
/// search.
pub fn technique_scores_optimal_tau(
    task: &MatchingTask,
    queries: &[usize],
    technique: &Technique,
    tau_grid: &[f64],
) -> (f64, ScoreAgg) {
    use uts_core::matching::TechniqueKind;
    match technique.kind() {
        TechniqueKind::Munich | TechniqueKind::Proud => {
            // One probability pass per query (the expensive part), then a
            // cheap τ sweep by thresholding — exactly equivalent to
            // re-running `answer_set` per τ (see
            // `MatchingTask::probabilities`).
            let engine = QueryEngine::prepare(task, technique);
            let per_query = parallel_map(queries, |&q| {
                let gt = task.ground_truth(q);
                let eps = task.threshold_against(q, gt.anchor, technique);
                let probs = engine
                    .probabilities(q, eps)
                    .expect("probabilistic technique");
                (gt.neighbors, probs)
            });
            let mut best: Option<(f64, ScoreAgg)> = None;
            for &tau in tau_grid {
                let mut agg = ScoreAgg::default();
                for (truth, probs) in &per_query {
                    let answer: Vec<usize> = probs
                        .iter()
                        .filter(|(_, p)| *p >= tau)
                        .map(|(i, _)| *i)
                        .collect();
                    agg.push(QualityScores::from_sets(&answer, truth));
                }
                let better = match &best {
                    Some((_, b)) => agg.f1.mean() > b.f1.mean(),
                    None => true,
                };
                if better {
                    best = Some((tau, agg));
                }
            }
            best.expect("non-empty grid")
        }
        _ => (0.0, technique_scores(task, queries, technique)),
    }
}

/// Wall-clock milliseconds per similarity query for a technique: runs the
/// calibrated matching query for each query index and divides by the
/// query count. Threshold calibration and the engine's per-collection
/// preparation are excluded from the timed region (they are amortised
/// per-collection work, not per-query work).
pub fn time_per_query_ms(task: &MatchingTask, queries: &[usize], technique: &Technique) -> f64 {
    // Pre-calibrate and prepare outside the timed region.
    let thresholds: Vec<(usize, f64)> = queries
        .iter()
        .map(|&q| (q, task.calibrated_threshold(q, technique)))
        .collect();
    let engine = QueryEngine::prepare(task, technique);
    let start = Instant::now();
    let mut guard = 0usize;
    for &(q, eps) in &thresholds {
        guard += engine.answer_set(q, eps).len();
    }
    let elapsed = start.elapsed().as_secs_f64() * 1e3;
    // Keep the result-set size observable so the optimiser cannot elide
    // the query loop.
    std::hint::black_box(guard);
    elapsed / queries.len().max(1) as f64
}

#[cfg(test)]
mod unit {
    use super::*;
    use uts_core::matching::Technique;
    use uts_datasets::{Catalogue, DatasetId};
    use uts_uncertain::ErrorFamily;

    fn small_dataset() -> Dataset {
        Catalogue::new(Seed::new(77)).generate_scaled(DatasetId::GunPoint, 24)
    }

    #[test]
    fn build_task_shapes() {
        let d = small_dataset();
        let spec = ErrorSpec::constant(ErrorFamily::Normal, 0.4);
        let task = build_task(&d, &spec, ReportedError::Truthful, Some(3), 5, Seed::new(1));
        assert_eq!(task.len(), 24);
        assert_eq!(task.k(), 5);
        assert!(task.multi().is_some());
        assert_eq!(task.multi().unwrap()[0].samples_per_point(), 3);
        let task = build_task(&d, &spec, ReportedError::Truthful, None, 5, Seed::new(1));
        assert!(task.multi().is_none());
    }

    #[test]
    fn reported_sigma_override_applies() {
        let d = small_dataset();
        let spec = ErrorSpec::paper_mixed(ErrorFamily::Normal);
        let task = build_task(
            &d,
            &spec,
            ReportedError::ConstantSigma(0.7),
            None,
            5,
            Seed::new(2),
        );
        for u in task.uncertain() {
            assert!(u.errors().iter().all(|e| e.sigma == 0.7));
        }
    }

    #[test]
    fn build_task_is_deterministic() {
        let d = small_dataset();
        let spec = ErrorSpec::constant(ErrorFamily::Exponential, 0.6);
        let a = build_task(&d, &spec, ReportedError::Truthful, None, 5, Seed::new(3));
        let b = build_task(&d, &spec, ReportedError::Truthful, None, 5, Seed::new(3));
        assert_eq!(a.uncertain()[7], b.uncertain()[7]);
    }

    #[test]
    fn pick_queries_contract() {
        let q = pick_queries(100, 10, Seed::new(4));
        assert_eq!(q.len(), 10);
        assert!(q.windows(2).all(|w| w[1] > w[0]));
        assert!(q.iter().all(|&i| i < 100));
        // Same seed → same set; different seed → (almost surely) different.
        assert_eq!(q, pick_queries(100, 10, Seed::new(4)));
        assert_ne!(q, pick_queries(100, 10, Seed::new(5)));
        // count >= n returns everything.
        assert_eq!(pick_queries(5, 10, Seed::new(6)), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn parallel_map_preserves_order() {
        let items: Vec<u64> = (0..250).collect();
        let out = parallel_map(&items, |&x| x * 2);
        assert_eq!(out, items.iter().map(|&x| x * 2).collect::<Vec<_>>());
        // Tiny input takes the sequential path.
        let out = parallel_map(&items[..2], |&x| x + 1);
        assert_eq!(out, vec![1, 2]);
    }

    #[test]
    fn scores_pipeline_end_to_end() {
        let d = small_dataset();
        let spec = ErrorSpec::constant(ErrorFamily::Normal, 0.3);
        let task = build_task(&d, &spec, ReportedError::Truthful, None, 5, Seed::new(7));
        let queries = pick_queries(task.len(), 6, Seed::new(8));
        let agg = technique_scores(&task, &queries, &Technique::Euclidean);
        assert_eq!(agg.f1.count(), 6);
        let ci = agg.f1.confidence_interval(0.95);
        assert!((0.0..=1.0).contains(&ci.mean));
    }

    #[test]
    fn optimal_tau_beats_fixed_tau() {
        let d = small_dataset();
        let spec = ErrorSpec::constant(ErrorFamily::Normal, 0.5);
        let task = build_task(&d, &spec, ReportedError::Truthful, None, 5, Seed::new(9));
        let queries = pick_queries(task.len(), 6, Seed::new(10));
        let proud = Technique::Proud {
            proud: uts_core::proud::Proud::new(uts_core::proud::ProudConfig::with_sigma(0.5)),
            tau: 0.5,
        };
        let grid = [0.1, 0.3, 0.5, 0.7, 0.9];
        let (best_tau, best) = technique_scores_optimal_tau(&task, &queries, &proud, &grid);
        assert!(grid.contains(&best_tau));
        for tau in grid {
            let fixed = technique_scores(&task, &queries, &proud.with_tau(tau));
            assert!(best.f1.mean() + 1e-12 >= fixed.f1.mean(), "τ={tau}");
        }
    }

    #[test]
    fn timing_returns_positive() {
        let d = small_dataset();
        let spec = ErrorSpec::constant(ErrorFamily::Normal, 0.4);
        let task = build_task(&d, &spec, ReportedError::Truthful, None, 5, Seed::new(11));
        let queries = pick_queries(task.len(), 4, Seed::new(12));
        let ms = time_per_query_ms(&task, &queries, &Technique::Euclidean);
        assert!(ms > 0.0 && ms.is_finite());
    }
}
