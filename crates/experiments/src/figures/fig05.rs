//! Figure 5 — F1 of PROUD, DUST and Euclidean averaged over all 17
//! datasets, varying the error standard deviation, for the normal (a),
//! uniform (b) and exponential (c) error distributions.
//!
//! Same protocol as Figure 4 but at full dataset breadth and without
//! MUNICH ("the computational cost of MUNICH was prohibitive for a full
//! scale experiment"). PROUD uses the optimal τ per σ value.

use uts_uncertain::{ErrorFamily, ErrorSpec};

use crate::config::ExpConfig;
use crate::figures;
use crate::runner::{
    build_task, pick_queries, technique_scores, technique_scores_optimal_tau, ReportedError,
    ScoreAgg,
};
use crate::table::Table;

/// Runs the experiment; returns one table per error family.
pub fn run(config: &ExpConfig) -> Vec<Table> {
    let datasets = figures::datasets(config);
    // One DUST instance for the whole figure: the lookup-table cache is
    // shared across datasets and σ values.
    let dust_t = figures::dust();
    let mut tables = Vec::new();
    for (panel, family) in [
        ('a', ErrorFamily::Normal),
        ('b', ErrorFamily::Uniform),
        ('c', ErrorFamily::Exponential),
    ] {
        let mut table = Table::new(
            format!("Figure 5({panel}): F1 over all datasets, {family} error"),
            vec![
                "sigma".into(),
                "DUST".into(),
                "PROUD".into(),
                "Euclidean".into(),
            ],
        );
        for sigma in config.scale.sigma_grid() {
            let spec = ErrorSpec::constant(family, sigma);
            let mut dust_all = ScoreAgg::default();
            let mut proud_all = ScoreAgg::default();
            let mut eucl_all = ScoreAgg::default();
            for dataset in &datasets {
                let seed = config
                    .seed
                    .derive("fig5")
                    .derive(dataset.meta.name)
                    .derive(family.name())
                    .derive_u64((sigma * 1000.0) as u64);
                let task = build_task(
                    dataset,
                    &spec,
                    ReportedError::Truthful,
                    None,
                    config.ground_truth_k,
                    seed,
                );
                let queries = pick_queries(task.len(), config.scale.queries_per_dataset(), seed);
                let (_, proud) = technique_scores_optimal_tau(
                    &task,
                    &queries,
                    &figures::proud_with_sigma(sigma),
                    &config.scale.tau_grid(),
                );
                dust_all.merge(&technique_scores(&task, &queries, &dust_t));
                proud_all.merge(&proud);
                eucl_all.merge(&technique_scores(&task, &queries, &figures::euclidean()));
            }
            table.push_row(vec![
                format!("{sigma:.1}"),
                Table::cell_ci(
                    dust_all.f1.mean(),
                    dust_all.f1.confidence_interval(0.95).half_width,
                ),
                Table::cell_ci(
                    proud_all.f1.mean(),
                    proud_all.f1.confidence_interval(0.95).half_width,
                ),
                Table::cell_ci(
                    eucl_all.f1.mean(),
                    eucl_all.f1.confidence_interval(0.95).half_width,
                ),
            ]);
        }
        tables.push(table);
    }
    tables
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::config::Scale;

    #[test]
    fn table_shape_with_two_datasets() {
        // Shrink to two datasets by hand to keep the unit test fast: use
        // the full driver but at quick scale with a tiny sigma grid via
        // Quick preset.
        let config = ExpConfig::with_scale(Scale::Quick);
        // Run only the normal-error panel by checking the full output.
        let tables = run(&config);
        assert_eq!(tables.len(), 3);
        assert_eq!(tables[0].rows.len(), Scale::Quick.sigma_grid().len());
        assert_eq!(
            tables[0].headers,
            vec!["sigma", "DUST", "PROUD", "Euclidean"]
        );
    }
}
