//! Figures 6 and 7 — precision and recall, averaged over all datasets,
//! as a function of the error standard deviation, for all three error
//! distributions.
//!
//! Figure 6 reports PROUD (with the optimal τ per σ), Figure 7 DUST.
//! The paper's headline observation: recall stays relatively high
//! (63–83% for PROUD) while precision collapses as σ grows — uncertainty
//! mostly manufactures false positives under the calibrated thresholds.

use uts_uncertain::{ErrorFamily, ErrorSpec};

use crate::config::ExpConfig;
use crate::figures;
use crate::runner::{
    build_task, pick_queries, technique_scores, technique_scores_optimal_tau, ReportedError,
    ScoreAgg,
};
use crate::table::Table;

/// Which figure (technique) to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Which {
    /// Figure 6: PROUD.
    Proud,
    /// Figure 7: DUST.
    Dust,
}

/// Runs the experiment; returns `[precision table, recall table]`.
pub fn run(config: &ExpConfig, which: Which) -> Vec<Table> {
    let datasets = figures::datasets(config);
    let dust_t = figures::dust();
    let (fig_no, name) = match which {
        Which::Proud => (6, "PROUD"),
        Which::Dust => (7, "DUST"),
    };
    let headers = vec![
        "sigma".into(),
        "uniform".into(),
        "normal".into(),
        "exponential".into(),
    ];
    let mut precision_table = Table::new(
        format!("Figure {fig_no}(a): precision for {name}, averaged over all datasets"),
        headers.clone(),
    );
    let mut recall_table = Table::new(
        format!("Figure {fig_no}(b): recall for {name}, averaged over all datasets"),
        headers,
    );

    for sigma in config.scale.sigma_grid() {
        let mut p_cells = vec![format!("{sigma:.1}")];
        let mut r_cells = vec![format!("{sigma:.1}")];
        for family in [
            ErrorFamily::Uniform,
            ErrorFamily::Normal,
            ErrorFamily::Exponential,
        ] {
            let spec = ErrorSpec::constant(family, sigma);
            let mut agg = ScoreAgg::default();
            for dataset in &datasets {
                let seed = config
                    .seed
                    .derive("fig6-7")
                    .derive(dataset.meta.name)
                    .derive(family.name())
                    .derive_u64((sigma * 1000.0) as u64);
                let task = build_task(
                    dataset,
                    &spec,
                    ReportedError::Truthful,
                    None,
                    config.ground_truth_k,
                    seed,
                );
                let queries = pick_queries(task.len(), config.scale.queries_per_dataset(), seed);
                let scores = match which {
                    Which::Proud => {
                        technique_scores_optimal_tau(
                            &task,
                            &queries,
                            &figures::proud_with_sigma(sigma),
                            &config.scale.tau_grid(),
                        )
                        .1
                    }
                    Which::Dust => technique_scores(&task, &queries, &dust_t),
                };
                agg.merge(&scores);
            }
            p_cells.push(Table::cell_ci(
                agg.precision.mean(),
                agg.precision.confidence_interval(0.95).half_width,
            ));
            r_cells.push(Table::cell_ci(
                agg.recall.mean(),
                agg.recall.confidence_interval(0.95).half_width,
            ));
        }
        precision_table.push_row(p_cells);
        recall_table.push_row(r_cells);
    }
    vec![precision_table, recall_table]
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::config::Scale;

    #[test]
    fn dust_variant_shape() {
        let config = ExpConfig::with_scale(Scale::Quick);
        let tables = run(&config, Which::Dust);
        assert_eq!(tables.len(), 2);
        assert!(tables[0].title.contains("Figure 7(a)"));
        assert_eq!(tables[0].rows.len(), Scale::Quick.sigma_grid().len());
        assert_eq!(tables[1].rows.len(), Scale::Quick.sigma_grid().len());
    }
}
