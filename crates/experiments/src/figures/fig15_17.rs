//! Figures 15, 16 and 17 — per-dataset F1 of Euclidean, DUST, UMA and
//! UEMA under the three mixed-error workloads (paper §5.2).
//!
//! One figure per error family (15: uniform, 16: normal,
//! 17: exponential), each with the 20% σ=1.0 / 80% σ=0.4 split. The
//! paper's headline result to reproduce: UMA and UEMA beat DUST and
//! Euclidean across the board (UEMA best overall), because they are the
//! only techniques exploiting the correlation of neighbouring points.
//! MUNICH and PROUD are omitted: "DUST performs at least as good, or
//! better … we only report the performance of DUST in these experiments
//! for ease of exposition."

use uts_uncertain::{ErrorFamily, ErrorSpec};

use crate::config::ExpConfig;
use crate::figures;
use crate::runner::{build_task, pick_queries, technique_scores, ReportedError};
use crate::table::Table;

/// Runs one of the three figures, selected by error family.
pub fn run(config: &ExpConfig, family: ErrorFamily) -> Vec<Table> {
    let fig_no = match family {
        ErrorFamily::Uniform => 15,
        ErrorFamily::Normal => 16,
        ErrorFamily::Exponential => 17,
    };
    let datasets = figures::datasets(config);
    let dust_t = figures::dust();
    let uma = figures::uma_default();
    let uema = figures::uema_default();
    let spec = ErrorSpec::paper_mixed(family);
    let mut table = Table::new(
        format!(
            "Figure {fig_no}: F1 per dataset, mixed {family} error (20% sigma=1.0, 80% sigma=0.4)"
        ),
        vec![
            "dataset".into(),
            "Euclidean".into(),
            "DUST".into(),
            "UMA".into(),
            "UEMA".into(),
        ],
    );
    for dataset in &datasets {
        let seed = config
            .seed
            .derive("fig15-17")
            .derive(dataset.meta.name)
            .derive(family.name());
        let task = build_task(
            dataset,
            &spec,
            ReportedError::Truthful,
            None,
            config.ground_truth_k,
            seed,
        );
        let queries = pick_queries(task.len(), config.scale.queries_per_dataset(), seed);
        let eucl = technique_scores(&task, &queries, &figures::euclidean());
        let dust = technique_scores(&task, &queries, &dust_t);
        let uma_s = technique_scores(&task, &queries, &uma);
        let uema_s = technique_scores(&task, &queries, &uema);
        table.push_row(vec![
            dataset.meta.name.to_string(),
            Table::cell_ci(eucl.f1.mean(), eucl.f1.confidence_interval(0.95).half_width),
            Table::cell_ci(dust.f1.mean(), dust.f1.confidence_interval(0.95).half_width),
            Table::cell_ci(
                uma_s.f1.mean(),
                uma_s.f1.confidence_interval(0.95).half_width,
            ),
            Table::cell_ci(
                uema_s.f1.mean(),
                uema_s.f1.confidence_interval(0.95).half_width,
            ),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn figure_numbering_matches_families() {
        // Paper: 15 = uniform, 16 = normal, 17 = exponential.
        // (Checked here because it is easy to transpose.)
        for (family, no) in [
            (ErrorFamily::Uniform, "15"),
            (ErrorFamily::Normal, "16"),
            (ErrorFamily::Exponential, "17"),
        ] {
            let fig_no = match family {
                ErrorFamily::Uniform => 15,
                ErrorFamily::Normal => 16,
                ErrorFamily::Exponential => 17,
            };
            assert_eq!(fig_no.to_string(), no);
        }
    }
}
