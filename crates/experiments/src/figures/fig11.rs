//! Figure 11 — average CPU time per query (ms, log scale in the paper)
//! for PROUD, DUST and Euclidean, averaged over all datasets, varying the
//! error standard deviation (normal errors).
//!
//! Paper §4.3 observations to reproduce: σ barely affects any technique;
//! Euclidean is fastest; DUST costs a small constant factor over
//! Euclidean once its lookup tables are built; PROUD (without the wavelet
//! synopsis) is the slowest of the three; MUNICH is omitted because it is
//! "orders of magnitude more expensive … (i.e., in the order of minutes)".

use uts_uncertain::{ErrorFamily, ErrorSpec};

use crate::config::ExpConfig;
use crate::figures;
use crate::runner::{build_task, pick_queries, time_per_query_ms, ReportedError};
use crate::table::Table;

/// Runs the experiment; returns a single σ × technique timing table.
pub fn run(config: &ExpConfig) -> Vec<Table> {
    let datasets = figures::datasets(config);
    let dust_t = figures::dust();
    let mut table = Table::new(
        "Figure 11: average time per query (ms) vs error standard deviation, normal error",
        vec![
            "sigma".into(),
            "PROUD".into(),
            "DUST".into(),
            "Euclidean".into(),
        ],
    );
    for sigma in config.scale.sigma_grid() {
        let spec = ErrorSpec::constant(ErrorFamily::Normal, sigma);
        let mut totals = [0.0f64; 3];
        for dataset in &datasets {
            let seed = config
                .seed
                .derive("fig11")
                .derive(dataset.meta.name)
                .derive_u64((sigma * 1000.0) as u64);
            let task = build_task(
                dataset,
                &spec,
                ReportedError::Truthful,
                None,
                config.ground_truth_k,
                seed,
            );
            let queries = pick_queries(task.len(), config.scale.queries_per_dataset(), seed);
            // Fixed τ: timing measures the query path, not the τ search.
            let proud = figures::proud_with_sigma(sigma).with_tau(0.5);
            totals[0] += time_per_query_ms(&task, &queries, &proud);
            totals[1] += time_per_query_ms(&task, &queries, &dust_t);
            totals[2] += time_per_query_ms(&task, &queries, &figures::euclidean());
        }
        let n = datasets.len() as f64;
        table.push_row(vec![
            format!("{sigma:.1}"),
            Table::cell(totals[0] / n),
            Table::cell(totals[1] / n),
            Table::cell(totals[2] / n),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::config::Scale;

    #[test]
    fn timing_table_shape() {
        let config = ExpConfig::with_scale(Scale::Quick);
        let tables = run(&config);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), Scale::Quick.sigma_grid().len());
        // All timings parse as positive numbers.
        for row in &tables[0].rows {
            for cell in &row[1..] {
                let v: f64 = cell.parse().unwrap();
                assert!(v > 0.0);
            }
        }
    }
}
