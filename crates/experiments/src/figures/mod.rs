//! Per-figure experiment drivers.
//!
//! One module per figure (grouped where the paper groups them); each
//! exposes `run(&ExpConfig) -> Vec<Table>`. The mapping to the paper is
//! catalogued in DESIGN.md §4.

pub mod chisq;
pub mod dataset_stats;
pub mod extensions;
pub mod fig04;
pub mod fig05;
pub mod fig06_07;
pub mod fig08_10;
pub mod fig11;
pub mod fig12;
pub mod fig13_14;
pub mod fig15_17;

use uts_core::dust::Dust;
use uts_core::matching::Technique;
use uts_core::proud::{Proud, ProudConfig};
use uts_core::uma::{Uema, Uma};
use uts_datasets::{Catalogue, Dataset};

use crate::config::ExpConfig;

/// Generates the (scaled) 17-dataset suite for a config.
pub fn datasets(config: &ExpConfig) -> Vec<Dataset> {
    let cat = Catalogue::new(config.seed.derive("catalogue"));
    uts_datasets::DatasetId::all()
        .map(|id| cat.generate_scaled(id, config.scale.max_series()))
        .collect()
}

/// The Euclidean baseline technique.
pub fn euclidean() -> Technique {
    Technique::Euclidean
}

/// DUST with default tables (shared cache across the whole experiment).
pub fn dust() -> Technique {
    Technique::Dust(Dust::default())
}

/// PROUD told the (single) error σ; τ is a placeholder replaced by the
/// optimal-τ search.
pub fn proud_with_sigma(sigma: f64) -> Technique {
    Technique::Proud {
        proud: Proud::new(ProudConfig::with_sigma(sigma)),
        tau: 0.5,
    }
}

/// MUNICH with default (Auto) strategy; τ placeholder as above.
pub fn munich() -> Technique {
    Technique::Munich {
        munich: uts_core::munich::Munich::default(),
        tau: 0.5,
    }
}

/// UMA at the paper's §5.2 setting (w = 2).
pub fn uma_default() -> Technique {
    Technique::Uma(Uma::default())
}

/// UEMA at the paper's §5.2 setting (w = 2, λ = 1).
pub fn uema_default() -> Technique {
    Technique::Uema(Uema::default())
}
