//! Section 4.1.1 in-text experiment — the chi-square uniformity test.
//!
//! "Since DUST requires to know the distribution of values of the time
//! series, and additionally makes the assumption that this distribution
//! is uniform, we tested the datasets to check if this assumption holds.
//! According to the Chi-square test, the hypothesis that the datasets
//! follow the uniform distribution was rejected (for all datasets) with
//! confidence level α = 0.01."

use uts_stats::chi_square_uniformity;

use crate::config::ExpConfig;
use crate::figures;
use crate::table::Table;

/// Histogram bins used by the goodness-of-fit test.
const BINS: usize = 20;
/// The paper's significance level.
const ALPHA: f64 = 0.01;

/// Runs the test on every dataset; returns one table.
pub fn run(config: &ExpConfig) -> Vec<Table> {
    let datasets = figures::datasets(config);
    let mut table = Table::new(
        format!("Section 4.1.1: chi-square uniformity test per dataset (alpha = {ALPHA})"),
        vec![
            "dataset".into(),
            "n_values".into(),
            "chi2".into(),
            "dof".into(),
            "p_value".into(),
            "rejected".into(),
        ],
    );
    for dataset in &datasets {
        let values = dataset.all_values();
        let outcome = chi_square_uniformity(&values, BINS)
            .expect("every dataset has enough values for the test");
        table.push_row(vec![
            dataset.meta.name.to_string(),
            values.len().to_string(),
            format!("{:.1}", outcome.statistic),
            outcome.dof.to_string(),
            format!("{:.3e}", outcome.p_value),
            if outcome.reject_at(ALPHA) {
                "yes"
            } else {
                "NO"
            }
            .to_string(),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::config::Scale;

    #[test]
    fn all_datasets_reject_uniformity() {
        let config = ExpConfig::with_scale(Scale::Quick);
        let tables = run(&config);
        assert_eq!(tables[0].rows.len(), 17);
        for row in &tables[0].rows {
            assert_eq!(row[5], "yes", "{}: uniformity not rejected", row[0]);
        }
    }
}
