//! Figure 4 — F1 of MUNICH, PROUD, DUST and Euclidean on the truncated
//! Gun Point dataset, varying the error standard deviation, for the
//! normal (a), uniform (b) and exponential (c) error distributions.
//!
//! Paper setup (§4.2.1): "We compare MUNICH, PROUD, DUST and Euclidean on
//! the Gun Point dataset, truncating it to 60 time series of length 6.
//! For each timestamp, we have 5 samples as input for MUNICH. Results are
//! averaged on 5 random queries. For both MUNICH and PROUD we are using
//! the optimal probabilistic threshold τ … Distance thresholds are chosen
//! such that in the ground truth set they return exactly 10 time series."

use uts_datasets::generator::{generate_template_dataset, TemplateConfig};
use uts_datasets::{Dataset, DatasetId, Spread};
use uts_uncertain::{ErrorFamily, ErrorSpec};

use crate::config::ExpConfig;
use crate::figures;
use crate::runner::{
    build_task, pick_queries, technique_scores, technique_scores_optimal_tau, ReportedError,
};
use crate::table::Table;

/// Number of series after truncation (paper: 60).
const N_SERIES: usize = 60;
/// Truncated series length (paper: 6).
const SERIES_LEN: usize = 6;
/// Random queries (paper: 5).
const N_QUERIES: usize = 5;

/// Runs the experiment; returns one table per error family.
pub fn run(config: &ExpConfig) -> Vec<Table> {
    let n_series = N_SERIES.min(config.scale.max_series());
    // The paper truncates real Gun Point recordings to length 6; those
    // prefixes still differ per recording (human motion varies take to
    // take). Our GunPoint analogue is a smooth parametric arc whose
    // six-point slices are nearly identical across series, which would
    // leave the ground truth arbitrary — so this experiment generates a
    // dedicated two-class, length-6 workload with realistic per-recording
    // variation (high jitter + smooth per-series noise). The calibration
    // target is the experiment's signal-to-noise geometry: clean 10th-NN
    // distances comfortably above the σ = 0.2 noise floor and far below
    // the σ = 2.0 one, as in the paper (see EXPERIMENTS.md, Figure 4).
    let (series, labels) = generate_template_dataset(
        n_series,
        SERIES_LEN,
        DatasetId::GunPoint.meta().n_classes,
        Spread::Medium,
        &TemplateConfig {
            jitter: 1.0,
            smooth_noise: 0.4,
            ..TemplateConfig::default()
        },
        config.seed.derive("fig4-gunpoint"),
    );
    let dataset = Dataset {
        meta: DatasetId::GunPoint.meta(),
        series,
        labels,
    };

    let mut tables = Vec::new();
    for (panel, family) in [
        ('a', ErrorFamily::Normal),
        ('b', ErrorFamily::Uniform),
        ('c', ErrorFamily::Exponential),
    ] {
        let mut table = Table::new(
            format!(
                "Figure 4({panel}): F1 on truncated GunPoint ({n_series} series, length {SERIES_LEN}), {family} error"
            ),
            vec![
                "sigma".into(),
                "MUNICH".into(),
                "DUST".into(),
                "PROUD".into(),
                "Euclidean".into(),
            ],
        );
        for sigma in config.scale.sigma_grid() {
            let spec = ErrorSpec::constant(family, sigma);
            let seed = config
                .seed
                .derive("fig4")
                .derive(family.name())
                .derive_u64((sigma * 1000.0) as u64);
            let task = build_task(
                &dataset,
                &spec,
                ReportedError::Truthful,
                Some(config.munich_samples),
                config.ground_truth_k,
                seed,
            );
            let queries = pick_queries(task.len(), N_QUERIES, seed);
            let tau_grid = config.scale.tau_grid();

            let (_, munich) =
                technique_scores_optimal_tau(&task, &queries, &figures::munich(), &tau_grid);
            let (_, proud) = technique_scores_optimal_tau(
                &task,
                &queries,
                &figures::proud_with_sigma(sigma),
                &tau_grid,
            );
            let dust = technique_scores(&task, &queries, &figures::dust());
            let eucl = technique_scores(&task, &queries, &figures::euclidean());

            table.push_row(vec![
                format!("{sigma:.1}"),
                Table::cell_ci(
                    munich.f1.mean(),
                    munich.f1.confidence_interval(0.95).half_width,
                ),
                Table::cell_ci(dust.f1.mean(), dust.f1.confidence_interval(0.95).half_width),
                Table::cell_ci(
                    proud.f1.mean(),
                    proud.f1.confidence_interval(0.95).half_width,
                ),
                Table::cell_ci(eucl.f1.mean(), eucl.f1.confidence_interval(0.95).half_width),
            ]);
        }
        tables.push(table);
    }
    tables
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::config::Scale;

    #[test]
    fn runs_at_quick_scale() {
        let mut config = ExpConfig::with_scale(Scale::Quick);
        config.ground_truth_k = 5; // 24-series quick subsample can't give 10 NNs cleanly
        let tables = run(&config);
        assert_eq!(tables.len(), 3);
        for t in &tables {
            assert_eq!(t.headers.len(), 5);
            assert_eq!(t.rows.len(), config.scale.sigma_grid().len());
        }
    }
}
