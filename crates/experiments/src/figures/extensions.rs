//! Extension experiments — capabilities the paper mentions but does not
//! evaluate, exercised end-to-end (DESIGN.md §4, "ablation benches and
//! extensions").
//!
//! * [`run_dtw`] — §3.2 notes that MUNICH and DUST extend to Dynamic Time
//!   Warping. This experiment builds a warped workload (each series gets
//!   a random smooth time warp before perturbation) where aligned
//!   distances are structurally wrong, and compares aligned Euclidean /
//!   DUST against their DTW counterparts.
//! * [`run_moments`] — PROUD's variance formula is exact only for
//!   Gaussian errors; the workspace adds an exact-moment mode
//!   (`MomentModel::ExactMoments`). This experiment measures whether it
//!   matters under the skewed exponential errors.
//! * [`run_synopsis`] — §4.3 notes PROUD can run over a Haar wavelet
//!   synopsis. This experiment measures the pruning rate and the
//!   agreement of the synopsis pre-filter against full PROUD.

use std::time::Instant;

use uts_core::dust::Dust;
use uts_core::matching::QualityScores;
use uts_core::proud::{MomentModel, Proud, ProudConfig, ProudSynopsis};
use uts_datasets::{Catalogue, DatasetId};
use uts_tseries::dtw::{dtw, DtwOptions};
use uts_tseries::{euclidean, TimeSeries};
use uts_uncertain::{perturb, ErrorFamily, ErrorSpec, UncertainSeries};

use crate::config::ExpConfig;
use crate::figures;
use crate::runner::{
    build_task, parallel_map, pick_queries, technique_scores_optimal_tau, ReportedError,
};
use crate::table::Table;

// ---------------------------------------------------------------------------
// ext-dtw
// ---------------------------------------------------------------------------

/// Sakoe–Chiba band used by the DTW variants (fraction of length).
const DTW_BAND_FRACTION: f64 = 0.1;

/// Runs the DTW extension experiment.
pub fn run_dtw(config: &ExpConfig) -> Vec<Table> {
    let seed = config.seed.derive("ext-dtw");
    // CBF: the classical benchmark where the discriminating shape occurs
    // at a random position, so warping-invariance matters.
    let n = 40.min(config.scale.max_series());
    let base = Catalogue::new(seed).generate_scaled(DatasetId::Cbf, n);

    // Warp each series (simulating phase jitter between recordings).
    let warped: Vec<TimeSeries> = base
        .series
        .iter()
        .enumerate()
        .map(|(i, s)| {
            let mut rng = seed.derive("warp").derive_u64(i as u64).rng();
            let warp = uts_datasets::generator::SmoothWarp::random(&mut rng, 0.05);
            let len = s.len();
            TimeSeries::from_values((0..len).map(|t| {
                let u = t as f64 / (len - 1) as f64;
                let uw = warp.apply(u);
                // Piecewise-linear read of the original at the warped position.
                let pos = uw * (len - 1) as f64;
                let lo = pos.floor() as usize;
                let hi = (lo + 1).min(len - 1);
                let frac = pos - lo as f64;
                s.at(lo) * (1.0 - frac) + s.at(hi) * frac
            }))
            .znormalized()
        })
        .collect();

    let band = ((warped[0].len() as f64 * DTW_BAND_FRACTION) as usize).max(2);
    let opts = DtwOptions::with_band(band);
    let spec = ErrorSpec::constant(ErrorFamily::Normal, 0.4);
    let observed: Vec<UncertainSeries> = warped
        .iter()
        .enumerate()
        .map(|(i, s)| perturb(s, &spec, seed.derive("obs").derive_u64(i as u64)))
        .collect();

    // Ground truth by clean *DTW* (the right notion of similarity for a
    // warped workload).
    let k = config.ground_truth_k.min(n / 3);
    let queries = pick_queries(n, config.scale.queries_per_dataset(), seed);
    let dust = Dust::default();

    // Four measures over observed series.
    type Measure<'a> = (
        &'a str,
        Box<dyn Fn(&UncertainSeries, &UncertainSeries) -> f64 + Sync + 'a>,
    );
    let measures: Vec<Measure> = vec![
        (
            "Euclidean",
            Box::new(|a, b| euclidean(a.values(), b.values())),
        ),
        (
            "DTW",
            Box::new(move |a, b| dtw(a.values(), b.values(), opts)),
        ),
        ("DUST", Box::new(|a, b| dust.distance(a, b))),
        ("DUST-DTW", Box::new(|a, b| dust.dtw_distance(a, b, opts))),
    ];

    let mut table = Table::new(
        format!("Extension (DTW): F1 on warped CBF, normal error sigma=0.4, band {band}"),
        vec![
            "measure".into(),
            "mean_F1".into(),
            "mean_precision".into(),
            "mean_recall".into(),
        ],
    );
    for (name, measure) in &measures {
        let scores = parallel_map(&queries, |&q| {
            // Clean DTW ground truth.
            let mut clean_d: Vec<(usize, f64)> = (0..n)
                .filter(|&i| i != q)
                .map(|i| (i, dtw(warped[q].values(), warped[i].values(), opts)))
                .collect();
            clean_d.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
            let truth: Vec<usize> = clean_d[..k].iter().map(|(i, _)| *i).collect();
            let anchor = clean_d[k - 1].0;
            // Calibrated threshold in the measure's own space.
            let eps = measure(&observed[q], &observed[anchor]);
            let answer: Vec<usize> = (0..n)
                .filter(|&i| i != q && measure(&observed[q], &observed[i]) <= eps)
                .collect();
            QualityScores::from_sets(&answer, &truth)
        });
        let agg = crate::runner::ScoreAgg::from_scores(&scores);
        table.push_row(vec![
            name.to_string(),
            Table::cell_ci(agg.f1.mean(), agg.f1.confidence_interval(0.95).half_width),
            Table::cell_ci(
                agg.precision.mean(),
                agg.precision.confidence_interval(0.95).half_width,
            ),
            Table::cell_ci(
                agg.recall.mean(),
                agg.recall.confidence_interval(0.95).half_width,
            ),
        ]);
    }
    vec![table]
}

// ---------------------------------------------------------------------------
// ext-moments
// ---------------------------------------------------------------------------

/// Runs the PROUD moment-model experiment.
pub fn run_moments(config: &ExpConfig) -> Vec<Table> {
    let datasets = figures::datasets(config);
    let mut table = Table::new(
        "Extension (moments): PROUD normal-theory vs exact-moment variance, exponential error",
        vec![
            "sigma".into(),
            "PROUD-normal-theory".into(),
            "PROUD-exact-moments".into(),
        ],
    );
    for sigma in config.scale.sigma_grid() {
        let spec = ErrorSpec::constant(ErrorFamily::Exponential, sigma);
        let mut normal_all = crate::runner::ScoreAgg::default();
        let mut exact_all = crate::runner::ScoreAgg::default();
        for dataset in datasets.iter().take(6) {
            let seed = config
                .seed
                .derive("ext-moments")
                .derive(dataset.meta.name)
                .derive_u64((sigma * 1000.0) as u64);
            let task = build_task(
                dataset,
                &spec,
                ReportedError::Truthful,
                None,
                config.ground_truth_k,
                seed,
            );
            let queries = pick_queries(task.len(), config.scale.queries_per_dataset(), seed);
            for (model, agg) in [
                (MomentModel::NormalTheory, &mut normal_all),
                (MomentModel::ExactMoments, &mut exact_all),
            ] {
                let technique = uts_core::matching::Technique::Proud {
                    proud: Proud::new(ProudConfig {
                        sigma_override: None, // exact mode needs per-point family info
                        moment_model: model,
                    }),
                    tau: 0.5,
                };
                let (_, scores) = technique_scores_optimal_tau(
                    &task,
                    &queries,
                    &technique,
                    &config.scale.tau_grid(),
                );
                agg.merge(&scores);
            }
        }
        table.push_row(vec![
            format!("{sigma:.1}"),
            Table::cell_ci(
                normal_all.f1.mean(),
                normal_all.f1.confidence_interval(0.95).half_width,
            ),
            Table::cell_ci(
                exact_all.f1.mean(),
                exact_all.f1.confidence_interval(0.95).half_width,
            ),
        ]);
    }
    vec![table]
}

// ---------------------------------------------------------------------------
// ext-synopsis
// ---------------------------------------------------------------------------

/// Runs the PROUD Haar-synopsis pruning experiment.
pub fn run_synopsis(config: &ExpConfig) -> Vec<Table> {
    let seed = config.seed.derive("ext-synopsis");
    let n = 60.min(config.scale.max_series());
    let dataset = Catalogue::new(seed).generate_scaled(DatasetId::Fish, n);
    let sigma = 0.5;
    let spec = ErrorSpec::constant(ErrorFamily::Normal, sigma);
    let cfg = ProudConfig::with_sigma(sigma);
    let proud = Proud::new(cfg);
    let observed: Vec<UncertainSeries> = dataset
        .series
        .iter()
        .enumerate()
        .map(|(i, s)| perturb(s, &spec, seed.derive_u64(i as u64)))
        .collect();
    let queries = pick_queries(n, config.scale.queries_per_dataset(), seed);
    let tau = 0.5;

    let mut table = Table::new(
        "Extension (synopsis): PROUD with Haar-prefix pruning (FISH, sigma=0.5, tau=0.5)",
        vec![
            "coefficients".into(),
            "pruned_frac".into(),
            "false_dismissals".into(),
            "time_full_ms".into(),
            "time_pruned_ms".into(),
        ],
    );

    // Reference: full PROUD answers and timing.
    let eps_of = |q: usize| {
        // Calibrate against the 10th clean NN, as everywhere else.
        let qs = dataset.series[q].values();
        let mut d: Vec<(usize, f64)> = (0..n)
            .filter(|&i| i != q)
            .map(|i| (i, euclidean(qs, dataset.series[i].values())))
            .collect();
        d.sort_by(|a, b| a.1.partial_cmp(&b.1).expect("finite"));
        let anchor = d[config.ground_truth_k.min(n / 3) - 1].0;
        euclidean(observed[q].values(), observed[anchor].values())
    };
    let epsilons: Vec<f64> = queries.iter().map(|&q| eps_of(q)).collect();

    let t0 = Instant::now();
    let full_answers: Vec<Vec<usize>> = queries
        .iter()
        .zip(&epsilons)
        .map(|(&q, &eps)| {
            (0..n)
                .filter(|&i| i != q && proud.matches(&observed[q], &observed[i], eps, tau))
                .collect()
        })
        .collect();
    let time_full = t0.elapsed().as_secs_f64() * 1e3 / queries.len() as f64;

    for k_coeff in [4usize, 8, 16, 32] {
        let synopses: Vec<ProudSynopsis> = observed
            .iter()
            .map(|s| ProudSynopsis::new(s, k_coeff, &cfg))
            .collect();
        let mut pruned = 0usize;
        let mut candidates = 0usize;
        let mut false_dismissals = 0usize;
        let t0 = Instant::now();
        for ((&q, &eps), full) in queries.iter().zip(&epsilons).zip(&full_answers) {
            let mut answer = Vec::new();
            for i in (0..n).filter(|&i| i != q) {
                candidates += 1;
                // Conservative pre-filter: an upper bound below τ proves
                // the candidate cannot pass the full test.
                if synopses[q].probability_upper_bound(&synopses[i], eps) < tau {
                    pruned += 1;
                    continue;
                }
                if proud.matches(&observed[q], &observed[i], eps, tau) {
                    answer.push(i);
                }
            }
            false_dismissals += full.iter().filter(|i| !answer.contains(i)).count();
        }
        let time_pruned = t0.elapsed().as_secs_f64() * 1e3 / queries.len() as f64;
        table.push_row(vec![
            k_coeff.to_string(),
            Table::cell(pruned as f64 / candidates as f64),
            false_dismissals.to_string(),
            Table::cell(time_full),
            Table::cell(time_pruned),
        ]);
    }
    vec![table]
}

// ---------------------------------------------------------------------------
// ext-bridge
// ---------------------------------------------------------------------------

/// Runs the model-bridge experiment: MUNICH's repeated-observation data
/// consumed (a) natively by MUNICH and (b) by PROUD/DUST through the
/// sample-estimation bridge (`MultiObsSeries::to_uncertain`), at
/// increasing samples-per-timestamp.
///
/// The question: how many repeated observations does the estimation
/// bridge need before the pdf-model techniques match their
/// known-σ performance? (§3.1 frames the two models as interchangeable
/// in principle; this measures the sample cost of that equivalence.)
pub fn run_bridge(config: &ExpConfig) -> Vec<Table> {
    use uts_core::matching::{MatchingTask, Technique};
    use uts_uncertain::{perturb_multi, MultiObsSeries};

    let seed = config.seed.derive("ext-bridge");
    let n = 40.min(config.scale.max_series());
    let dataset = Catalogue::new(seed).generate_scaled(DatasetId::SyntheticControl, n);
    let sigma = 0.6;
    let spec = ErrorSpec::constant(ErrorFamily::Normal, sigma);
    let k = config.ground_truth_k.min(n / 3);
    let tau_grid = config.scale.tau_grid();

    let mut table = Table::new(
        "Extension (bridge): sample-estimated pdf model vs known-sigma, syntheticControl, sigma=0.6",
        vec![
            "samples_per_point".into(),
            "DUST-estimated".into(),
            "DUST-known-sigma".into(),
            "PROUD-estimated".into(),
            "MUNICH-native".into(),
        ],
    );

    for s in [2usize, 3, 5, 10, 20] {
        let multi: Vec<MultiObsSeries> = dataset
            .series
            .iter()
            .enumerate()
            .map(|(i, c)| perturb_multi(c, &spec, s, seed.derive_u64((s * 1000 + i) as u64)))
            .collect();
        // Bridge: estimate value + σ from the samples.
        let estimated: Vec<_> = multi
            .iter()
            .map(|m| m.to_uncertain(ErrorFamily::Normal, 1e-3))
            .collect();
        // Known-σ reference: same estimated values, true σ declared.
        let known: Vec<_> = estimated
            .iter()
            .map(|u| u.with_reported_sigma(sigma))
            .collect();

        let task_est = MatchingTask::new(dataset.series.clone(), estimated, Some(multi.clone()), k);
        let task_known = MatchingTask::new(dataset.series.clone(), known, None, k);
        let queries = pick_queries(n, config.scale.queries_per_dataset(), seed);

        let dust_est = crate::runner::technique_scores(&task_est, &queries, &figures::dust());
        let dust_known = crate::runner::technique_scores(&task_known, &queries, &figures::dust());
        let (_, proud_est) = technique_scores_optimal_tau(
            &task_est,
            &queries,
            &uts_core::matching::Technique::Proud {
                proud: Proud::new(ProudConfig::default()), // per-point estimated σ
                tau: 0.5,
            },
            &tau_grid,
        );
        let (_, munich) = technique_scores_optimal_tau(
            &task_est,
            &queries,
            &Technique::Munich {
                munich: uts_core::munich::Munich::new(uts_core::munich::MunichConfig {
                    strategy: uts_core::munich::MunichStrategy::MonteCarlo { samples: 500 },
                    ..uts_core::munich::MunichConfig::default()
                }),
                tau: 0.5,
            },
            &tau_grid,
        );

        table.push_row(vec![
            s.to_string(),
            Table::cell_ci(
                dust_est.f1.mean(),
                dust_est.f1.confidence_interval(0.95).half_width,
            ),
            Table::cell_ci(
                dust_known.f1.mean(),
                dust_known.f1.confidence_interval(0.95).half_width,
            ),
            Table::cell_ci(
                proud_est.f1.mean(),
                proud_est.f1.confidence_interval(0.95).half_width,
            ),
            Table::cell_ci(
                munich.f1.mean(),
                munich.f1.confidence_interval(0.95).half_width,
            ),
        ]);
    }
    vec![table]
}

// ---------------------------------------------------------------------------
// ext-classify
// ---------------------------------------------------------------------------

/// Runs the 1-NN classification experiment: leave-one-out accuracy on
/// three datasets under the mixed-noise workload, per distance measure —
/// the "mining algorithm built on similarity matching" the paper's
/// introduction motivates.
pub fn run_classify(config: &ExpConfig) -> Vec<Table> {
    use uts_core::classify::one_nn_loocv;
    use uts_core::query::EuclideanMeasure;
    use uts_core::uma::{Uema, Uma};

    let seed = config.seed.derive("ext-classify");
    let spec = ErrorSpec::paper_mixed(ErrorFamily::Normal);
    let dust = Dust::default();
    let mut table = Table::new(
        "Extension (classification): leave-one-out 1-NN accuracy, mixed normal error",
        vec![
            "dataset".into(),
            "Euclidean".into(),
            "DUST".into(),
            "UMA".into(),
            "UEMA".into(),
        ],
    );
    for id in [
        DatasetId::Cbf,
        DatasetId::GunPoint,
        DatasetId::SyntheticControl,
    ] {
        let n = 48.min(config.scale.max_series());
        let dataset = Catalogue::new(seed).generate_scaled(id, n);
        let observed: Vec<UncertainSeries> = dataset
            .series
            .iter()
            .enumerate()
            .map(|(i, s)| perturb(s, &spec, seed.derive(id.name()).derive_u64(i as u64)))
            .collect();
        let acc = |m: &dyn Fn() -> f64| m();
        let eucl = acc(&|| one_nn_loocv(&observed, &dataset.labels, &EuclideanMeasure).accuracy());
        let dust_a = acc(&|| one_nn_loocv(&observed, &dataset.labels, &dust).accuracy());
        let uma = acc(&|| one_nn_loocv(&observed, &dataset.labels, &Uma::default()).accuracy());
        let uema = acc(&|| one_nn_loocv(&observed, &dataset.labels, &Uema::default()).accuracy());
        table.push_row(vec![
            id.name().to_string(),
            Table::cell(eucl),
            Table::cell(dust_a),
            Table::cell(uma),
            Table::cell(uema),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::config::Scale;

    #[test]
    fn dtw_extension_shows_warping_gain() {
        let config = ExpConfig::with_scale(Scale::Quick);
        let tables = run_dtw(&config);
        assert_eq!(tables[0].rows.len(), 4);
        // Parse mean F1 cells ("x.xxx±y.yyy").
        let f1 = |row: usize| -> f64 {
            tables[0].rows[row][1]
                .split('±')
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        let (eucl, dtw_f1, _dust, dust_dtw) = (f1(0), f1(1), f1(2), f1(3));
        // On a warped workload with DTW ground truth, warping-aware
        // measures must beat aligned ones.
        assert!(
            dtw_f1 > eucl && dust_dtw > eucl,
            "DTW {dtw_f1} / DUST-DTW {dust_dtw} should beat aligned Euclidean {eucl}"
        );
    }

    #[test]
    fn synopsis_never_dismisses_falsely() {
        let config = ExpConfig::with_scale(Scale::Quick);
        let tables = run_synopsis(&config);
        for row in &tables[0].rows {
            assert_eq!(row[2], "0", "synopsis pruning produced false dismissals");
        }
    }

    #[test]
    fn bridge_estimation_improves_with_samples() {
        let config = ExpConfig::with_scale(Scale::Quick);
        let tables = run_bridge(&config);
        let rows = &tables[0].rows;
        assert_eq!(rows.len(), 5);
        let f1 = |row: &Vec<String>, col: usize| -> f64 {
            row[col].split('±').next().unwrap().parse().unwrap()
        };
        // With many samples the estimated-σ DUST approaches the known-σ
        // reference (within a small gap).
        let last = &rows[rows.len() - 1];
        let est = f1(last, 1);
        let known = f1(last, 2);
        assert!(
            est + 0.1 >= known,
            "estimated-σ DUST ({est}) far from known-σ ({known}) at 20 samples"
        );
    }

    #[test]
    fn classification_runs_on_three_datasets() {
        let config = ExpConfig::with_scale(Scale::Quick);
        let tables = run_classify(&config);
        assert_eq!(tables[0].rows.len(), 3);
        for row in &tables[0].rows {
            for cell in &row[1..] {
                let acc: f64 = cell.parse().unwrap();
                assert!((0.0..=1.0).contains(&acc), "{}: accuracy {acc}", row[0]);
            }
        }
    }
}
