//! Dataset diagnostics — the §6 correlation between dataset geometry and
//! matching accuracy.
//!
//! "A close look at the characteristics of these datasets revealed that
//! datasets for which the average distance between time series was low
//! led to low accuracy … the same level of uncertainty does not affect
//! much datasets that have a high average distance among their time
//! series." This experiment tabulates, per dataset: the average pairwise
//! (length-normalised) distance, the lag-1 autocorrelation (the temporal
//! smoothness UMA/UEMA exploit), and the Euclidean F1 under the §5.2
//! mixed-noise workload — so the §6 relationship can be read off one
//! table.

use uts_stats::autocorrelation;
use uts_tseries::euclidean;
use uts_uncertain::{ErrorFamily, ErrorSpec};

use crate::config::ExpConfig;
use crate::figures;
use crate::runner::{build_task, pick_queries, technique_scores, ReportedError};
use crate::table::Table;

/// Runs the diagnostics; returns a single per-dataset table.
pub fn run(config: &ExpConfig) -> Vec<Table> {
    let datasets = figures::datasets(config);
    let spec = ErrorSpec::paper_mixed(ErrorFamily::Normal);
    let mut table = Table::new(
        "Dataset diagnostics (paper section 6): geometry vs accuracy",
        vec![
            "dataset".into(),
            "spread".into(),
            "avg_pair_dist".into(),
            "lag1_acf".into(),
            "euclid_F1".into(),
        ],
    );
    for dataset in &datasets {
        // Length-normalised average pairwise distance (comparable across
        // datasets of different lengths).
        let mut acc = 0.0;
        let mut count = 0usize;
        let probe = dataset.series.len().min(40);
        for i in 0..probe {
            for j in (i + 1)..probe {
                acc += euclidean(dataset.series[i].values(), dataset.series[j].values())
                    / (dataset.series_length() as f64).sqrt();
                count += 1;
            }
        }
        let avg_dist = acc / count as f64;

        let mean_acf = dataset
            .series
            .iter()
            .take(20)
            .filter_map(|s| autocorrelation(s.values(), 1).map(|a| a[1]))
            .sum::<f64>()
            / 20.0;

        let seed = config
            .seed
            .derive("dataset-stats")
            .derive(dataset.meta.name);
        let task = build_task(
            dataset,
            &spec,
            ReportedError::Truthful,
            None,
            config.ground_truth_k,
            seed,
        );
        let queries = pick_queries(task.len(), config.scale.queries_per_dataset(), seed);
        let f1 = technique_scores(&task, &queries, &figures::euclidean())
            .f1
            .mean();

        table.push_row(vec![
            dataset.meta.name.to_string(),
            format!("{:?}", dataset.meta.spread),
            Table::cell(avg_dist),
            Table::cell(mean_acf),
            Table::cell(f1),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::config::Scale;

    #[test]
    fn geometry_predicts_accuracy() {
        let config = ExpConfig::with_scale(Scale::Quick);
        let tables = run(&config);
        let rows = &tables[0].rows;
        assert_eq!(rows.len(), 17);
        // All series are temporally correlated. The bound is loose for a
        // reason: the ECG analogue's sharp QRS complexes give it a lag-1
        // ACF near 0.3 even though the beat structure is highly regular.
        for row in rows {
            let acf: f64 = row[3].parse().unwrap();
            assert!(acf > 0.25, "{}: lag-1 ACF {acf}", row[0]);
        }
        // The §6 relationship: mean F1 of the three tightest datasets is
        // below the mean of the three loosest.
        let mut by_dist: Vec<(f64, f64)> = rows
            .iter()
            .map(|r| (r[2].parse().unwrap(), r[4].parse().unwrap()))
            .collect();
        by_dist.sort_by(|a, b| a.0.partial_cmp(&b.0).unwrap());
        let tight: f64 = by_dist[..3].iter().map(|(_, f)| f).sum::<f64>() / 3.0;
        let loose: f64 = by_dist[14..].iter().map(|(_, f)| f).sum::<f64>() / 3.0;
        assert!(
            loose > tight,
            "loose datasets ({loose}) should beat tight ones ({tight})"
        );
    }
}
