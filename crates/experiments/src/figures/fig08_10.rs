//! Figures 8, 9 and 10 — per-dataset F1 of PROUD, DUST and Euclidean
//! under the mixed-error workloads of paper §4.2.3.
//!
//! * **Figure 8** — mixed *normal* error: 20% of points at σ = 1.0, 80%
//!   at σ = 0.4. PROUD cannot model per-point σ and is told σ = 0.7;
//!   DUST receives the true per-point information.
//! * **Figure 9** — mixed *families* (uniform, normal, exponential) with
//!   the same 20/80 σ split; again σ = 0.7 for PROUD.
//! * **Figure 10** — same perturbation as Figure 8, but the per-point σ
//!   is *misreported* to DUST as a constant 0.7 ("inform DUST (wrongly)
//!   that the standard deviation is 0.7") — the information-quality
//!   ablation in which DUST's edge over Euclidean disappears.

use uts_uncertain::{ErrorFamily, ErrorSpec};

use crate::config::ExpConfig;
use crate::figures;
use crate::runner::{
    build_task, pick_queries, technique_scores, technique_scores_optimal_tau, ReportedError,
};
use crate::table::Table;

/// Which of the three figures to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Which {
    /// Figure 8: mixed normal error, truthful reporting to DUST.
    MixedNormal,
    /// Figure 9: mixed uniform+normal+exponential error.
    MixedFamilies,
    /// Figure 10: mixed normal error, σ misreported as 0.7.
    MisreportedSigma,
}

/// The σ PROUD is told in all three workloads (paper: 0.7).
const PROUD_SIGMA: f64 = 0.7;

/// Runs the experiment; returns a single per-dataset table.
pub fn run(config: &ExpConfig, which: Which) -> Vec<Table> {
    let datasets = figures::datasets(config);
    let dust_t = figures::dust();
    let (title, spec, reported) = match which {
        Which::MixedNormal => (
            "Figure 8: F1 per dataset, mixed normal error (20% sigma=1.0, 80% sigma=0.4)",
            ErrorSpec::paper_mixed(ErrorFamily::Normal),
            ReportedError::Truthful,
        ),
        Which::MixedFamilies => (
            "Figure 9: F1 per dataset, mixed uniform/normal/exponential error (20% sigma=1.0, 80% sigma=0.4)",
            ErrorSpec::paper_mixed_families(),
            ReportedError::Truthful,
        ),
        Which::MisreportedSigma => (
            "Figure 10: F1 per dataset, mixed normal error with sigma misreported as 0.7",
            ErrorSpec::paper_mixed(ErrorFamily::Normal),
            ReportedError::ConstantSigma(PROUD_SIGMA),
        ),
    };
    let mut table = Table::new(
        title,
        vec![
            "dataset".into(),
            "Euclidean".into(),
            "DUST".into(),
            "PROUD".into(),
        ],
    );
    for dataset in &datasets {
        let seed = config
            .seed
            .derive("fig8-10")
            .derive(dataset.meta.name)
            .derive_u64(which as u64);
        let task = build_task(dataset, &spec, reported, None, config.ground_truth_k, seed);
        let queries = pick_queries(task.len(), config.scale.queries_per_dataset(), seed);
        let eucl = technique_scores(&task, &queries, &figures::euclidean());
        let dust = technique_scores(&task, &queries, &dust_t);
        let (_, proud) = technique_scores_optimal_tau(
            &task,
            &queries,
            &figures::proud_with_sigma(PROUD_SIGMA),
            &config.scale.tau_grid(),
        );
        table.push_row(vec![
            dataset.meta.name.to_string(),
            Table::cell_ci(eucl.f1.mean(), eucl.f1.confidence_interval(0.95).half_width),
            Table::cell_ci(dust.f1.mean(), dust.f1.confidence_interval(0.95).half_width),
            Table::cell_ci(
                proud.f1.mean(),
                proud.f1.confidence_interval(0.95).half_width,
            ),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::config::Scale;

    #[test]
    fn fig10_misreports_sigma() {
        // Verify the wiring: with MisreportedSigma the tasks carry σ=0.7.
        let config = ExpConfig::with_scale(Scale::Quick);
        let datasets = figures::datasets(&config);
        let spec = ErrorSpec::paper_mixed(ErrorFamily::Normal);
        let task = build_task(
            &datasets[0],
            &spec,
            ReportedError::ConstantSigma(PROUD_SIGMA),
            None,
            config.ground_truth_k,
            config.seed,
        );
        assert!(task.uncertain()[0].errors().iter().all(|e| e.sigma == 0.7));
    }

    #[test]
    fn fig8_table_covers_all_datasets() {
        let config = ExpConfig::with_scale(Scale::Quick);
        let tables = run(&config, Which::MixedNormal);
        assert_eq!(tables.len(), 1);
        assert_eq!(tables[0].rows.len(), 17);
        assert_eq!(tables[0].rows[0][0], "50words");
    }
}
