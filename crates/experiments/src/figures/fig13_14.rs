//! Figures 13 and 14 — UMA/UEMA parameter sensitivity (paper §5.2).
//!
//! * **Figure 13**: F1 as a function of the window half-width `w ∈ 0…20`
//!   for UMA and UEMA with λ = 0.1 and λ = 1. The paper's findings: F1
//!   rises sharply from w = 0 (pure Euclidean) to w ≈ 2, then falls
//!   ("distant neighbours do not carry much information"); large λ makes
//!   the window size irrelevant.
//! * **Figure 14**: F1 as a function of the decay λ ∈ 0…1 for UEMA with
//!   w = 5 and w = 10; λ has only a small effect, especially for small
//!   windows.
//!
//! Both use the stress-test workload of §5.2: mixed normal error, 20% of
//! points at σ = 1.0 and 80% at σ = 0.4, averaged over all datasets.

use uts_core::matching::Technique;
use uts_core::uma::{Uema, Uma};
use uts_uncertain::{ErrorFamily, ErrorSpec};

use crate::config::ExpConfig;
use crate::figures;
use crate::runner::{build_task, pick_queries, technique_scores, ReportedError, ScoreAgg};
use crate::table::Table;

/// Window sweep of Figure 13.
const WINDOWS: [usize; 9] = [0, 1, 2, 4, 6, 8, 12, 16, 20];
/// λ sweep of Figure 14.
const LAMBDAS: [f64; 11] = [0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0];

/// Mean F1 of a filter technique over all datasets under the §5.2
/// workload.
fn mean_f1(
    config: &ExpConfig,
    datasets: &[uts_datasets::Dataset],
    technique: &Technique,
) -> ScoreAgg {
    let spec = ErrorSpec::paper_mixed(ErrorFamily::Normal);
    let mut agg = ScoreAgg::default();
    for dataset in datasets {
        let seed = config.seed.derive("fig13-14").derive(dataset.meta.name);
        let task = build_task(
            dataset,
            &spec,
            ReportedError::Truthful,
            None,
            config.ground_truth_k,
            seed,
        );
        let queries = pick_queries(task.len(), config.scale.queries_per_dataset(), seed);
        agg.merge(&technique_scores(&task, &queries, technique));
    }
    agg
}

/// Runs Figure 13; returns one table (w × {UMA, UEMA-0.1, UEMA-1}).
pub fn run_fig13(config: &ExpConfig) -> Vec<Table> {
    let datasets = figures::datasets(config);
    let mut table = Table::new(
        "Figure 13: F1 vs window half-width w for UMA and UEMA (lambda = 0.1, 1), mixed normal error",
        vec![
            "w".into(),
            "UMA".into(),
            "UEMA-0.1".into(),
            "UEMA-1".into(),
        ],
    );
    for w in WINDOWS {
        let uma = mean_f1(config, &datasets, &Technique::Uma(Uma::new(w)));
        let uema01 = mean_f1(config, &datasets, &Technique::Uema(Uema::new(w, 0.1)));
        let uema1 = mean_f1(config, &datasets, &Technique::Uema(Uema::new(w, 1.0)));
        table.push_row(vec![
            w.to_string(),
            Table::cell_ci(uma.f1.mean(), uma.f1.confidence_interval(0.95).half_width),
            Table::cell_ci(
                uema01.f1.mean(),
                uema01.f1.confidence_interval(0.95).half_width,
            ),
            Table::cell_ci(
                uema1.f1.mean(),
                uema1.f1.confidence_interval(0.95).half_width,
            ),
        ]);
    }
    vec![table]
}

/// Runs Figure 14; returns one table (λ × {UEMA-5, UEMA-10}).
pub fn run_fig14(config: &ExpConfig) -> Vec<Table> {
    let datasets = figures::datasets(config);
    let mut table = Table::new(
        "Figure 14: F1 vs decay factor lambda for UEMA (w = 5, 10), mixed normal error",
        vec!["lambda".into(), "UEMA-5".into(), "UEMA-10".into()],
    );
    for lambda in LAMBDAS {
        let w5 = mean_f1(config, &datasets, &Technique::Uema(Uema::new(5, lambda)));
        let w10 = mean_f1(config, &datasets, &Technique::Uema(Uema::new(10, lambda)));
        table.push_row(vec![
            format!("{lambda:.1}"),
            Table::cell_ci(w5.f1.mean(), w5.f1.confidence_interval(0.95).half_width),
            Table::cell_ci(w10.f1.mean(), w10.f1.confidence_interval(0.95).half_width),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod unit {
    use super::*;
    use crate::config::Scale;

    #[test]
    fn sweeps_cover_paper_ranges() {
        assert_eq!(WINDOWS[0], 0);
        assert_eq!(*WINDOWS.last().unwrap(), 20);
        assert_eq!(LAMBDAS[0], 0.0);
        assert_eq!(*LAMBDAS.last().unwrap(), 1.0);
    }

    #[test]
    fn lambda_zero_column_matches_uma() {
        // Figure 14 at λ=0 must equal UMA with the same w (the paper
        // notes "the case λ = 0 is equivalent to UMA").
        let config = ExpConfig::with_scale(Scale::Quick);
        let datasets: Vec<uts_datasets::Dataset> =
            figures::datasets(&config).into_iter().take(2).collect();
        let uema0 = mean_f1(&config, &datasets, &Technique::Uema(Uema::new(5, 0.0)));
        let uma5 = mean_f1(&config, &datasets, &Technique::Uma(Uma::new(5)));
        assert!((uema0.f1.mean() - uma5.f1.mean()).abs() < 1e-12);
    }
}
