//! Figure 12 — average CPU time per query (ms, log scale in the paper)
//! for PROUD, DUST and Euclidean, varying the time-series length from 50
//! to 1000 points ("time series of different lengths have been obtained
//! resampling the raw sequences"), with normal error.
//!
//! The paper's observation to reproduce: time grows linearly in the
//! length for all three techniques.

use uts_datasets::Dataset;
use uts_tseries::resample::resample_series;
use uts_uncertain::{ErrorFamily, ErrorSpec};

use crate::config::ExpConfig;
use crate::figures;
use crate::runner::{build_task, pick_queries, time_per_query_ms, ReportedError};
use crate::table::Table;

/// Length grid (the paper plots 0–1000).
const LENGTHS: [usize; 7] = [50, 100, 200, 400, 600, 800, 1000];
/// Fixed error σ for the sweep.
const SIGMA: f64 = 0.6;

/// Runs the experiment; returns a single length × technique timing table.
pub fn run(config: &ExpConfig) -> Vec<Table> {
    let datasets = figures::datasets(config);
    let dust_t = figures::dust();
    let spec = ErrorSpec::constant(ErrorFamily::Normal, SIGMA);
    let mut table = Table::new(
        "Figure 12: average time per query (ms) vs series length (resampled), normal error",
        vec![
            "length".into(),
            "PROUD".into(),
            "DUST".into(),
            "Euclidean".into(),
        ],
    );
    for len in LENGTHS {
        let mut totals = [0.0f64; 3];
        for dataset in &datasets {
            let resampled = Dataset {
                meta: dataset.meta,
                series: dataset
                    .series
                    .iter()
                    .map(|s| resample_series(s, len))
                    .collect(),
                labels: dataset.labels.clone(),
            };
            let seed = config
                .seed
                .derive("fig12")
                .derive(dataset.meta.name)
                .derive_u64(len as u64);
            let task = build_task(
                &resampled,
                &spec,
                ReportedError::Truthful,
                None,
                config.ground_truth_k,
                seed,
            );
            let queries = pick_queries(task.len(), config.scale.queries_per_dataset(), seed);
            let proud = figures::proud_with_sigma(SIGMA).with_tau(0.5);
            totals[0] += time_per_query_ms(&task, &queries, &proud);
            totals[1] += time_per_query_ms(&task, &queries, &dust_t);
            totals[2] += time_per_query_ms(&task, &queries, &figures::euclidean());
        }
        let n = datasets.len() as f64;
        table.push_row(vec![
            len.to_string(),
            Table::cell(totals[0] / n),
            Table::cell(totals[1] / n),
            Table::cell(totals[2] / n),
        ]);
    }
    vec![table]
}

#[cfg(test)]
mod unit {
    use super::*;

    #[test]
    fn lengths_cover_paper_range() {
        assert_eq!(LENGTHS[0], 50);
        assert_eq!(*LENGTHS.last().unwrap(), 1000);
    }
}
